//! The versioned, length-prefixed binary wire protocol of the location
//! service.
//!
//! Every frame is `MAGIC ("AT") + version + frame type + payload length
//! (u32 LE) + payload`, all integers little-endian. The decoder is total:
//! any byte sequence either yields a frame, asks for more bytes, or
//! returns a typed [`DecodeError`] — it never panics and never allocates
//! more than the declared (and capped) payload length, so a malicious or
//! corrupt peer cannot take the server down (the `proto_proptests` suite
//! fuzzes this over random, truncated, and bit-flipped frames).
//!
//! Client → server frames: [`Frame::SubmitSpectrum`],
//! [`Frame::ReportFailure`], [`Frame::Localize`], [`Frame::ClearSession`],
//! [`Frame::Ping`], and — version 2, the multi-process deployment split —
//! [`Frame::SubmitKeyed`] (AP ingestion role: a spectrum tagged with the
//! [`ClientKey`] it belongs to) and [`Frame::LocalizeKey`] (application
//! query role: localize whatever the server's session store holds for a
//! key) — and, version 3, the compressed uplink:
//! [`Frame::SubmitCompressed`] and [`Frame::SubmitCompressedKeyed`],
//! whose spectra travel as [`crate::codec`] blobs (16-bit log-domain
//! quantized, or lossless XOR-delta for bit-exact replay) instead of raw
//! `f64` bins — and, version 4, the read-only, role-neutral metrics
//! scrape [`Frame::MetricsQuery`] answered with
//! [`Frame::MetricsReport`]. Server → client frames: [`Frame::SubmitAck`],
//! [`Frame::Fix`], [`Frame::Failed`], [`Frame::Overloaded`],
//! [`Frame::DeadlineExceeded`], [`Frame::Pong`], [`Frame::ProtocolError`],
//! [`Frame::ShuttingDown`]. Every submission path — raw or compressed —
//! enforces the [`AoaSpectrum`] invariants (finite, non-negative, ≥ 8
//! bins) at decode, so a decoded frame can always be turned into a
//! spectrum without panicking.
//!
//! **Versioning**: each frame is encoded with the *lowest* protocol
//! version that defines it ([`Frame::wire_version`]), and the decoder
//! accepts [`MIN_VERSION`]`..=`[`VERSION`] headers. A keyed (v2) or
//! compressed (v3) frame type arriving under an older header is a typed
//! [`DecodeError::VersionGated`] — never a misparse — so an old peer that
//! replays new type bytes fails loudly at the framing layer.

use crate::codec::{self, CompressedMode};
use at_channel::geometry::pt;
use at_config::TopologyOp;
use at_core::health::{ApStatus, LocalizeError};
use at_core::synthesis::ApPose;
use at_core::AoaSpectrum;
use std::fmt;
use std::io::{self, Read, Write};

/// Frame preamble: every frame starts with these two bytes.
pub const MAGIC: [u8; 2] = *b"AT";

/// Current protocol version. Version 2 added the keyed ingestion/query
/// split ([`Frame::SubmitKeyed`], [`Frame::LocalizeKey`]); version 3
/// added the compressed uplink ([`Frame::SubmitCompressed`],
/// [`Frame::SubmitCompressedKeyed`]); version 4 added the read-only
/// metrics scrape ([`Frame::MetricsQuery`], [`Frame::MetricsReport`]);
/// version 5 added live topology administration ([`Frame::Reconfigure`],
/// [`Frame::TopologyQuery`], [`Frame::TopologyInfo`]).
/// Versions outside [`MIN_VERSION`]`..=`[`VERSION`] are rejected with
/// [`DecodeError::BadVersion`] so incompatible peers fail loudly, not
/// subtly.
pub const VERSION: u8 = 5;

/// Oldest protocol version still decoded. Version-1 peers keep working:
/// every pre-keyed frame type is unchanged on the wire.
pub const MIN_VERSION: u8 = 1;

/// Identifies one tracked client across AP ingestion connections and
/// application query connections: six AP processes stream
/// [`Frame::SubmitKeyed`] spectra for the keys they hear, applications
/// ask [`Frame::LocalizeKey`] about the keys they care about, and the
/// server's session store joins the two on this value.
pub type ClientKey = u64;

/// Bytes before the payload: magic (2) + version (1) + type (1) +
/// payload length (4).
pub const HEADER_LEN: usize = 8;

/// Hard cap on a frame payload. The largest legitimate frame (a 65536-bin
/// spectrum submission) is ~512 KiB; anything larger is a protocol error,
/// decoded *before* any allocation happens.
pub const MAX_PAYLOAD: usize = 1 << 20;

/// Largest spectrum resolution accepted on the wire (the localization
/// engine's bearing grids are `u16`-indexed, so this is also its cap).
pub const MAX_BINS: usize = 1 << 16;

/// Health of one deployment AP as reported inside a [`Frame::Fix`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ApHealthReport {
    /// Deployment AP index.
    pub ap_id: u32,
    /// Health status under the server's policy at fusion time.
    pub status: ApStatus,
    /// The AP's consecutive acquisition-failure count.
    pub consecutive_failures: u32,
}

/// One protocol frame, either direction.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Client → server: a processed AoA spectrum from deployment AP
    /// `ap_id`, `age` refresh intervals old, for this connection's
    /// session. Acknowledged with [`Frame::SubmitAck`].
    SubmitSpectrum {
        /// Deployment AP index the spectrum came from.
        ap_id: u32,
        /// Spectrum age in server refresh intervals (0 = fresh).
        age: u64,
        /// The spectrum itself (validated on decode).
        spectrum: AoaSpectrum,
    },
    /// Client → server: AP `ap_id` failed to acquire this interval
    /// (drives the server-side health tracker exactly like
    /// `ArrayTrackServer::report_acquisition_failure`).
    ReportFailure {
        /// Deployment AP index that failed.
        ap_id: u32,
    },
    /// Client → server: localize this session's accumulated spectra.
    /// `deadline_ms` is the client's time budget from frame receipt
    /// (0 = no deadline); the server sheds the request with
    /// [`Frame::DeadlineExceeded`] instead of doing work that can no
    /// longer be useful.
    Localize {
        /// Relative deadline in milliseconds (0 = none).
        deadline_ms: u32,
    },
    /// Client → server: drop this session's accumulated spectra (health
    /// state is deployment-wide and deliberately survives, mirroring
    /// `ArrayTrackServer::clear`).
    ClearSession,
    /// Client → server: liveness probe, answered with [`Frame::Pong`]
    /// without touching the localize queues.
    Ping {
        /// Echo token.
        token: u64,
    },
    /// AP process → server (version 2): a processed AoA spectrum for
    /// tracked client `key`, heard by deployment AP `ap_id`. Lands in the
    /// server's session store (replacing that AP's previous spectrum for
    /// the key atomically) rather than in this connection's private
    /// session; acknowledged with [`Frame::SubmitAck`] carrying the
    /// key's resident spectrum count.
    SubmitKeyed {
        /// The tracked client this spectrum belongs to.
        key: ClientKey,
        /// Deployment AP index the spectrum came from.
        ap_id: u32,
        /// Spectrum age in server refresh intervals at submission
        /// (0 = fresh); the store ages it further as intervals pass.
        age: u64,
        /// The spectrum itself (validated on decode).
        spectrum: AoaSpectrum,
    },
    /// Application → server (version 2): localize tracked client `key`
    /// from whatever spectra the session store currently holds for it.
    /// Deadline semantics match [`Frame::Localize`].
    LocalizeKey {
        /// The tracked client to localize.
        key: ClientKey,
        /// Relative deadline in milliseconds (0 = none).
        deadline_ms: u32,
    },
    /// Client → server (version 3): [`Frame::SubmitSpectrum`] with the
    /// spectrum as a [`crate::codec`] blob instead of raw `f64` bins.
    /// The spectrum held here is what the wire delivers: for
    /// [`CompressedMode::Quantized`] that is the grid-snapped
    /// ([`codec::quantized`]) spectrum, for
    /// [`CompressedMode::Lossless`] the bit-exact original.
    SubmitCompressed {
        /// Deployment AP index the spectrum came from.
        ap_id: u32,
        /// Spectrum age in server refresh intervals (0 = fresh).
        age: u64,
        /// Which codec layout the blob uses.
        mode: CompressedMode,
        /// The spectrum as decoded from (or to be encoded into) the
        /// compressed blob.
        spectrum: AoaSpectrum,
    },
    /// AP process → server (version 3): [`Frame::SubmitKeyed`] with a
    /// compressed spectrum — the high-volume uplink frame the codec
    /// exists for.
    SubmitCompressedKeyed {
        /// The tracked client this spectrum belongs to.
        key: ClientKey,
        /// Deployment AP index the spectrum came from.
        ap_id: u32,
        /// Spectrum age in server refresh intervals at submission.
        age: u64,
        /// Which codec layout the blob uses.
        mode: CompressedMode,
        /// The spectrum as decoded from (or to be encoded into) the
        /// compressed blob.
        spectrum: AoaSpectrum,
    },
    /// Server → client: submission accepted; `observations` is the
    /// session's accumulated spectrum count.
    SubmitAck {
        /// Observations now held for this session.
        observations: u32,
    },
    /// Server → client: a location fix plus the deployment health the
    /// fusion saw.
    Fix {
        /// Estimated x, meters.
        x: f64,
        /// Estimated y, meters.
        y: f64,
        /// Likelihood at the estimate (comparable within one query only).
        likelihood: f64,
        /// Per-AP health snapshot used by this fusion.
        health: Vec<ApHealthReport>,
    },
    /// Server → client: the deployment could not support a fix; carries
    /// the same typed [`LocalizeError`] the in-process server returns.
    Failed {
        /// Why fusion refused.
        error: LocalizeError,
    },
    /// Server → client: admission control shed the request (queue full).
    /// The request was *not* processed; retry after the hint.
    Overloaded {
        /// Suggested client backoff, milliseconds.
        retry_after_ms: u32,
    },
    /// Server → client: the request's deadline expired before the
    /// expensive stages ran; no fix was computed.
    DeadlineExceeded,
    /// Server → client: answer to [`Frame::Ping`].
    Pong {
        /// The ping's token, echoed.
        token: u64,
    },
    /// Server → client: the last frame could not be honored (bad AP
    /// index, malformed payload). The connection stays usable.
    ProtocolError {
        /// Machine-readable code (see `server` for assignments).
        code: u8,
        /// Human-readable detail.
        message: String,
    },
    /// Server → client: the server is draining; the request was not
    /// admitted. Reconnect elsewhere or retry later.
    ShuttingDown,
    /// Client → server (version 4): scrape the server's live metrics.
    /// Read-only and role-neutral — any connection (AP, app, or untyped)
    /// may ask without typing itself — answered with
    /// [`Frame::MetricsReport`] holding a snapshot-consistent
    /// `at_obs` Prometheus rendering.
    MetricsQuery,
    /// Server → client (version 4): answer to [`Frame::MetricsQuery`] —
    /// one `at_obs::snapshot::MetricsSnapshot` in Prometheus text form
    /// (truncated at the payload cap; the snapshot itself is taken
    /// atomically, so every series in it is from the same instant).
    MetricsReport {
        /// Prometheus text exposition of the snapshot.
        text: String,
    },
    /// Admin → server (version 5): change the deployment topology on a
    /// live server — add, remove, or move one AP. The server drains
    /// in-flight localizes onto the old epoch, rebuilds for the new one
    /// (reusing per-AP steering grids for unchanged APs), remaps the
    /// session store and health tracker, and answers with
    /// [`Frame::TopologyInfo`] describing the new epoch. An invalid op
    /// (bad AP id, removing the last AP, non-finite pose) is refused with
    /// a typed [`Frame::ProtocolError`] and leaves the epoch untouched.
    Reconfigure {
        /// The topology change to apply.
        op: TopologyOp,
    },
    /// Any client → server (version 5): ask which topology epoch the
    /// server is on. Read-only and role-neutral like
    /// [`Frame::MetricsQuery`]; answered with [`Frame::TopologyInfo`].
    TopologyQuery,
    /// Server → client (version 5): the current topology — epoch counter,
    /// the epoch's canonical config fingerprint (see
    /// `at_config::SystemConfig::fingerprint`), and the AP poses in
    /// deployment-id order.
    TopologyInfo {
        /// Monotonic epoch counter (0 = the config the server started
        /// with).
        epoch: u64,
        /// Fingerprint of the epoch's canonical `SystemConfig` bytes.
        fingerprint: u64,
        /// AP poses, indexed by deployment AP id.
        poses: Vec<ApPose>,
    },
}

/// Frame-type byte values (requests < 0x80, responses ≥ 0x80).
mod ft {
    pub const SUBMIT: u8 = 0x01;
    pub const REPORT_FAILURE: u8 = 0x02;
    pub const LOCALIZE: u8 = 0x03;
    pub const CLEAR: u8 = 0x04;
    pub const PING: u8 = 0x05;
    pub const SUBMIT_KEYED: u8 = 0x06;
    pub const LOCALIZE_KEY: u8 = 0x07;
    pub const SUBMIT_COMPRESSED: u8 = 0x08;
    pub const SUBMIT_COMPRESSED_KEYED: u8 = 0x09;
    pub const METRICS_QUERY: u8 = 0x0A;
    pub const RECONFIGURE: u8 = 0x0B;
    pub const TOPOLOGY_QUERY: u8 = 0x0C;
    pub const SUBMIT_ACK: u8 = 0x81;
    pub const FIX: u8 = 0x82;
    pub const FAILED: u8 = 0x83;
    pub const OVERLOADED: u8 = 0x84;
    pub const DEADLINE: u8 = 0x85;
    pub const PONG: u8 = 0x86;
    pub const PROTOCOL_ERROR: u8 = 0x87;
    pub const SHUTTING_DOWN: u8 = 0x88;
    pub const METRICS_REPORT: u8 = 0x89;
    pub const TOPOLOGY_INFO: u8 = 0x8A;
}

/// Longest metrics text a [`Frame::MetricsReport`] can carry: the payload
/// cap minus the text-length prefix. Longer renderings are truncated at
/// encode (a scrape that loses its tail is still a scrape; an oversize
/// frame is a protocol violation).
pub const MAX_METRICS_TEXT: usize = MAX_PAYLOAD - 4;

/// Why a byte sequence is not a valid frame. Every variant is
/// connection-fatal (framing can no longer be trusted) except when
/// returned from a higher-level validation that chooses to answer with
/// [`Frame::ProtocolError`] instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The first two bytes are not [`MAGIC`].
    BadMagic {
        /// The bytes found instead.
        got: [u8; 2],
    },
    /// Unsupported protocol version.
    BadVersion {
        /// The version byte found.
        got: u8,
    },
    /// Unknown frame-type byte.
    UnknownType {
        /// The type byte found.
        got: u8,
    },
    /// A frame type newer than the header's declared version: the peer is
    /// replaying bytes it does not actually speak. Typed so a version-1
    /// peer carrying keyed frames fails loudly instead of misparsing.
    VersionGated {
        /// The frame-type byte.
        frame: u8,
        /// The version the header declared.
        got: u8,
        /// The version this frame type first appeared in.
        need: u8,
    },
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    Oversize {
        /// The declared length.
        len: usize,
    },
    /// The payload does not parse as its frame type.
    Malformed {
        /// The frame-type byte being parsed.
        frame: u8,
        /// What went wrong.
        reason: &'static str,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic { got } => write!(f, "bad frame magic {got:02x?}"),
            Self::BadVersion { got } => {
                write!(f, "unsupported protocol version {got} (want {VERSION})")
            }
            Self::UnknownType { got } => write!(f, "unknown frame type 0x{got:02x}"),
            Self::VersionGated { frame, got, need } => write!(
                f,
                "frame type 0x{frame:02x} requires protocol version {need}, header declared {got}"
            ),
            Self::Oversize { len } => {
                write!(f, "payload of {len} bytes exceeds the {MAX_PAYLOAD} cap")
            }
            Self::Malformed { frame, reason } => {
                write!(f, "malformed 0x{frame:02x} frame: {reason}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Bounds-checked little-endian payload reader.
struct Cur<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Cur<'a> {
    fn new(b: &'a [u8]) -> Self {
        Self { b, i: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.i.checked_add(n)?;
        if end > self.b.len() {
            return None;
        }
        let s = &self.b[self.i..end];
        self.i = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }

    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    /// Everything not yet consumed (used by the compressed-spectrum tail,
    /// whose own framing knows where it ends).
    fn rest(&mut self) -> &'a [u8] {
        let s = &self.b[self.i..];
        self.i = self.b.len();
        s
    }

    fn done(&self) -> bool {
        self.i == self.b.len()
    }
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn status_to_wire(s: ApStatus) -> u8 {
    match s {
        ApStatus::Healthy => 0,
        ApStatus::Degraded => 1,
        ApStatus::Down => 2,
    }
}

fn status_from_wire(b: u8) -> Option<ApStatus> {
    match b {
        0 => Some(ApStatus::Healthy),
        1 => Some(ApStatus::Degraded),
        2 => Some(ApStatus::Down),
        _ => None,
    }
}

/// The protocol version a frame type first appeared in; `None` for
/// unknown type bytes.
fn min_version_for(ty: u8) -> Option<u8> {
    match ty {
        ft::SUBMIT
        | ft::REPORT_FAILURE
        | ft::LOCALIZE
        | ft::CLEAR
        | ft::PING
        | ft::SUBMIT_ACK
        | ft::FIX
        | ft::FAILED
        | ft::OVERLOADED
        | ft::DEADLINE
        | ft::PONG
        | ft::PROTOCOL_ERROR
        | ft::SHUTTING_DOWN => Some(1),
        ft::SUBMIT_KEYED | ft::LOCALIZE_KEY => Some(2),
        ft::SUBMIT_COMPRESSED | ft::SUBMIT_COMPRESSED_KEYED => Some(3),
        ft::METRICS_QUERY | ft::METRICS_REPORT => Some(4),
        ft::RECONFIGURE | ft::TOPOLOGY_QUERY | ft::TOPOLOGY_INFO => Some(5),
        _ => None,
    }
}

impl Frame {
    fn type_byte(&self) -> u8 {
        match self {
            Frame::SubmitSpectrum { .. } => ft::SUBMIT,
            Frame::ReportFailure { .. } => ft::REPORT_FAILURE,
            Frame::Localize { .. } => ft::LOCALIZE,
            Frame::ClearSession => ft::CLEAR,
            Frame::Ping { .. } => ft::PING,
            Frame::SubmitKeyed { .. } => ft::SUBMIT_KEYED,
            Frame::LocalizeKey { .. } => ft::LOCALIZE_KEY,
            Frame::SubmitCompressed { .. } => ft::SUBMIT_COMPRESSED,
            Frame::SubmitCompressedKeyed { .. } => ft::SUBMIT_COMPRESSED_KEYED,
            Frame::SubmitAck { .. } => ft::SUBMIT_ACK,
            Frame::Fix { .. } => ft::FIX,
            Frame::Failed { .. } => ft::FAILED,
            Frame::Overloaded { .. } => ft::OVERLOADED,
            Frame::DeadlineExceeded => ft::DEADLINE,
            Frame::Pong { .. } => ft::PONG,
            Frame::ProtocolError { .. } => ft::PROTOCOL_ERROR,
            Frame::ShuttingDown => ft::SHUTTING_DOWN,
            Frame::MetricsQuery => ft::METRICS_QUERY,
            Frame::MetricsReport { .. } => ft::METRICS_REPORT,
            Frame::Reconfigure { .. } => ft::RECONFIGURE,
            Frame::TopologyQuery => ft::TOPOLOGY_QUERY,
            Frame::TopologyInfo { .. } => ft::TOPOLOGY_INFO,
        }
    }

    /// The version byte this frame encodes under: the lowest protocol
    /// version that defines its type, so version-1 peers keep decoding
    /// every pre-keyed frame unchanged.
    pub fn wire_version(&self) -> u8 {
        min_version_for(self.type_byte()).expect("own frame types are known")
    }

    /// Appends this frame's wire encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let header_at = out.len();
        out.extend_from_slice(&MAGIC);
        out.push(self.wire_version());
        out.push(self.type_byte());
        push_u32(out, 0); // payload length, patched below
        let payload_at = out.len();
        match self {
            Frame::SubmitSpectrum {
                ap_id,
                age,
                spectrum,
            } => {
                push_u32(out, *ap_id);
                push_u64(out, *age);
                push_u32(out, spectrum.bins() as u32);
                for v in spectrum.values() {
                    push_f64(out, *v);
                }
            }
            Frame::SubmitKeyed {
                key,
                ap_id,
                age,
                spectrum,
            } => {
                push_u64(out, *key);
                push_u32(out, *ap_id);
                push_u64(out, *age);
                push_u32(out, spectrum.bins() as u32);
                for v in spectrum.values() {
                    push_f64(out, *v);
                }
            }
            Frame::LocalizeKey { key, deadline_ms } => {
                push_u64(out, *key);
                push_u32(out, *deadline_ms);
            }
            Frame::SubmitCompressed {
                ap_id,
                age,
                mode,
                spectrum,
            } => {
                push_u32(out, *ap_id);
                push_u64(out, *age);
                codec::compress_into(out, spectrum, *mode);
            }
            Frame::SubmitCompressedKeyed {
                key,
                ap_id,
                age,
                mode,
                spectrum,
            } => {
                push_u64(out, *key);
                push_u32(out, *ap_id);
                push_u64(out, *age);
                codec::compress_into(out, spectrum, *mode);
            }
            Frame::ReportFailure { ap_id } => push_u32(out, *ap_id),
            Frame::Localize { deadline_ms } => push_u32(out, *deadline_ms),
            Frame::ClearSession
            | Frame::DeadlineExceeded
            | Frame::ShuttingDown
            | Frame::MetricsQuery
            | Frame::TopologyQuery => {}
            Frame::Reconfigure { op } => op.encode(out),
            Frame::TopologyInfo {
                epoch,
                fingerprint,
                poses,
            } => {
                push_u64(out, *epoch);
                push_u64(out, *fingerprint);
                push_u32(out, poses.len() as u32);
                for p in poses {
                    push_f64(out, p.center.x);
                    push_f64(out, p.center.y);
                    push_f64(out, p.axis_angle);
                }
            }
            Frame::MetricsReport { text } => {
                let mut n = text.len().min(MAX_METRICS_TEXT);
                // Truncate on a UTF-8 boundary so the decoder's lossy
                // conversion reproduces the bytes exactly.
                while n > 0 && !text.is_char_boundary(n) {
                    n -= 1;
                }
                push_u32(out, n as u32);
                out.extend_from_slice(&text.as_bytes()[..n]);
            }
            Frame::Ping { token } | Frame::Pong { token } => push_u64(out, *token),
            Frame::SubmitAck { observations } => push_u32(out, *observations),
            Frame::Fix {
                x,
                y,
                likelihood,
                health,
            } => {
                push_f64(out, *x);
                push_f64(out, *y);
                push_f64(out, *likelihood);
                push_u32(out, health.len() as u32);
                for h in health {
                    push_u32(out, h.ap_id);
                    out.push(status_to_wire(h.status));
                    push_u32(out, h.consecutive_failures);
                }
            }
            Frame::Failed { error } => match error {
                LocalizeError::NoObservations => out.push(0),
                LocalizeError::QuorumNotMet {
                    available,
                    required,
                    stale,
                    down,
                    degenerate,
                } => {
                    out.push(1);
                    push_u64(out, *available as u64);
                    push_u64(out, *required as u64);
                    push_u64(out, *stale as u64);
                    push_u64(out, *down as u64);
                    push_u64(out, *degenerate as u64);
                }
                LocalizeError::ResolutionMismatch {
                    observation,
                    bins,
                    expected,
                } => {
                    out.push(2);
                    push_u64(out, *observation as u64);
                    push_u64(out, *bins as u64);
                    push_u64(out, *expected as u64);
                }
            },
            Frame::Overloaded { retry_after_ms } => push_u32(out, *retry_after_ms),
            Frame::ProtocolError { code, message } => {
                out.push(*code);
                let msg = message.as_bytes();
                let n = msg.len().min(u16::MAX as usize);
                out.extend_from_slice(&(n as u16).to_le_bytes());
                out.extend_from_slice(&msg[..n]);
            }
        }
        let len = (out.len() - payload_at) as u32;
        out[header_at + 4..header_at + 8].copy_from_slice(&len.to_le_bytes());
    }

    /// This frame's wire encoding as a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }
}

/// Parses the wire form of a spectrum (`u32` bin count + raw `f64` bins)
/// at the cursor, enforcing the [`AoaSpectrum`] invariants before any
/// constructor can assert.
fn decode_spectrum(
    c: &mut Cur<'_>,
    mal: &impl Fn(&'static str) -> DecodeError,
) -> Result<AoaSpectrum, DecodeError> {
    let bins = c.u32().ok_or(mal("truncated bin count"))? as usize;
    if !(8..=MAX_BINS).contains(&bins) {
        return Err(mal("spectrum bin count out of range"));
    }
    let raw = c
        .take(bins.checked_mul(8).ok_or(mal("bin count overflow"))?)
        .ok_or(mal("truncated spectrum values"))?;
    let mut values = Vec::with_capacity(bins);
    for chunk in raw.chunks_exact(8) {
        let v = f64::from_le_bytes(chunk.try_into().unwrap());
        if !v.is_finite() || v < 0.0 {
            return Err(mal("spectrum values must be finite and non-negative"));
        }
        values.push(v);
    }
    Ok(AoaSpectrum::from_values(values))
}

/// Decodes the payload of a frame whose header already validated.
/// `version` is the header's declared version: a frame type newer than it
/// is [`DecodeError::VersionGated`], decided *before* any payload parse.
fn decode_payload(version: u8, ty: u8, payload: &[u8]) -> Result<Frame, DecodeError> {
    let mal = |reason: &'static str| DecodeError::Malformed { frame: ty, reason };
    if let Some(need) = min_version_for(ty) {
        if version < need {
            return Err(DecodeError::VersionGated {
                frame: ty,
                got: version,
                need,
            });
        }
    }
    let mut c = Cur::new(payload);
    let frame = match ty {
        ft::SUBMIT => {
            let ap_id = c.u32().ok_or(mal("truncated ap_id"))?;
            let age = c.u64().ok_or(mal("truncated age"))?;
            let spectrum = decode_spectrum(&mut c, &mal)?;
            Frame::SubmitSpectrum {
                ap_id,
                age,
                spectrum,
            }
        }
        ft::SUBMIT_KEYED => {
            let key = c.u64().ok_or(mal("truncated key"))?;
            let ap_id = c.u32().ok_or(mal("truncated ap_id"))?;
            let age = c.u64().ok_or(mal("truncated age"))?;
            let spectrum = decode_spectrum(&mut c, &mal)?;
            Frame::SubmitKeyed {
                key,
                ap_id,
                age,
                spectrum,
            }
        }
        ft::LOCALIZE_KEY => Frame::LocalizeKey {
            key: c.u64().ok_or(mal("truncated key"))?,
            deadline_ms: c.u32().ok_or(mal("truncated deadline"))?,
        },
        ft::SUBMIT_COMPRESSED => {
            let ap_id = c.u32().ok_or(mal("truncated ap_id"))?;
            let age = c.u64().ok_or(mal("truncated age"))?;
            let (mode, spectrum) = codec::decompress(c.rest()).map_err(|e| mal(e.reason()))?;
            Frame::SubmitCompressed {
                ap_id,
                age,
                mode,
                spectrum,
            }
        }
        ft::SUBMIT_COMPRESSED_KEYED => {
            let key = c.u64().ok_or(mal("truncated key"))?;
            let ap_id = c.u32().ok_or(mal("truncated ap_id"))?;
            let age = c.u64().ok_or(mal("truncated age"))?;
            let (mode, spectrum) = codec::decompress(c.rest()).map_err(|e| mal(e.reason()))?;
            Frame::SubmitCompressedKeyed {
                key,
                ap_id,
                age,
                mode,
                spectrum,
            }
        }
        ft::REPORT_FAILURE => Frame::ReportFailure {
            ap_id: c.u32().ok_or(mal("truncated ap_id"))?,
        },
        ft::LOCALIZE => Frame::Localize {
            deadline_ms: c.u32().ok_or(mal("truncated deadline"))?,
        },
        ft::CLEAR => Frame::ClearSession,
        ft::PING => Frame::Ping {
            token: c.u64().ok_or(mal("truncated token"))?,
        },
        ft::SUBMIT_ACK => Frame::SubmitAck {
            observations: c.u32().ok_or(mal("truncated count"))?,
        },
        ft::FIX => {
            let x = c.f64().ok_or(mal("truncated x"))?;
            let y = c.f64().ok_or(mal("truncated y"))?;
            let likelihood = c.f64().ok_or(mal("truncated likelihood"))?;
            let n = c.u32().ok_or(mal("truncated health count"))? as usize;
            // 9 bytes per entry; bound before allocating.
            if n > payload.len() / 9 {
                return Err(mal("health count exceeds payload"));
            }
            let mut health = Vec::with_capacity(n);
            for _ in 0..n {
                let ap_id = c.u32().ok_or(mal("truncated health ap_id"))?;
                let status = status_from_wire(c.u8().ok_or(mal("truncated health status"))?)
                    .ok_or(mal("unknown health status"))?;
                let consecutive_failures = c.u32().ok_or(mal("truncated failure count"))?;
                health.push(ApHealthReport {
                    ap_id,
                    status,
                    consecutive_failures,
                });
            }
            Frame::Fix {
                x,
                y,
                likelihood,
                health,
            }
        }
        ft::FAILED => {
            let code = c.u8().ok_or(mal("truncated error code"))?;
            let error = match code {
                0 => LocalizeError::NoObservations,
                1 => LocalizeError::QuorumNotMet {
                    available: c.u64().ok_or(mal("truncated available"))? as usize,
                    required: c.u64().ok_or(mal("truncated required"))? as usize,
                    stale: c.u64().ok_or(mal("truncated stale"))? as usize,
                    down: c.u64().ok_or(mal("truncated down"))? as usize,
                    degenerate: c.u64().ok_or(mal("truncated degenerate"))? as usize,
                },
                2 => LocalizeError::ResolutionMismatch {
                    observation: c.u64().ok_or(mal("truncated observation"))? as usize,
                    bins: c.u64().ok_or(mal("truncated bins"))? as usize,
                    expected: c.u64().ok_or(mal("truncated expected"))? as usize,
                },
                _ => return Err(mal("unknown localize-error code")),
            };
            Frame::Failed { error }
        }
        ft::OVERLOADED => Frame::Overloaded {
            retry_after_ms: c.u32().ok_or(mal("truncated retry hint"))?,
        },
        ft::DEADLINE => Frame::DeadlineExceeded,
        ft::PONG => Frame::Pong {
            token: c.u64().ok_or(mal("truncated token"))?,
        },
        ft::PROTOCOL_ERROR => {
            let code = c.u8().ok_or(mal("truncated code"))?;
            let n = c
                .take(2)
                .map(|s| u16::from_le_bytes(s.try_into().unwrap()))
                .ok_or(mal("truncated message length"))? as usize;
            let raw = c.take(n).ok_or(mal("truncated message"))?;
            Frame::ProtocolError {
                code,
                message: String::from_utf8_lossy(raw).into_owned(),
            }
        }
        ft::SHUTTING_DOWN => Frame::ShuttingDown,
        ft::METRICS_QUERY => Frame::MetricsQuery,
        ft::TOPOLOGY_QUERY => Frame::TopologyQuery,
        ft::RECONFIGURE => {
            let raw = c.rest();
            let (op, used) = TopologyOp::decode(raw).map_err(|_| mal("undecodable topology op"))?;
            if used != raw.len() {
                return Err(mal("trailing payload bytes"));
            }
            Frame::Reconfigure { op }
        }
        ft::TOPOLOGY_INFO => {
            let epoch = c.u64().ok_or(mal("truncated epoch"))?;
            let fingerprint = c.u64().ok_or(mal("truncated fingerprint"))?;
            let n = c.u32().ok_or(mal("truncated pose count"))? as usize;
            // 24 bytes per pose; bound before allocating.
            if n > payload.len() / 24 || n > at_config::MAX_APS {
                return Err(mal("pose count exceeds payload"));
            }
            let mut poses = Vec::with_capacity(n);
            for _ in 0..n {
                let x = c.f64().ok_or(mal("truncated pose x"))?;
                let y = c.f64().ok_or(mal("truncated pose y"))?;
                let axis_angle = c.f64().ok_or(mal("truncated pose axis"))?;
                if !(x.is_finite() && y.is_finite() && axis_angle.is_finite()) {
                    return Err(mal("pose coordinates must be finite"));
                }
                poses.push(ApPose {
                    center: pt(x, y),
                    axis_angle,
                });
            }
            Frame::TopologyInfo {
                epoch,
                fingerprint,
                poses,
            }
        }
        ft::METRICS_REPORT => {
            let n = c.u32().ok_or(mal("truncated text length"))? as usize;
            let raw = c.take(n).ok_or(mal("truncated metrics text"))?;
            Frame::MetricsReport {
                text: String::from_utf8_lossy(raw).into_owned(),
            }
        }
        other => return Err(DecodeError::UnknownType { got: other }),
    };
    if !c.done() {
        return Err(mal("trailing payload bytes"));
    }
    Ok(frame)
}

/// Decodes one frame from the front of `buf`.
///
/// Returns `Ok(None)` when `buf` holds a valid prefix of a frame (read
/// more bytes and retry), `Ok(Some((frame, consumed)))` on success, and a
/// [`DecodeError`] when the bytes can never become a valid frame. Never
/// panics, for any input.
pub fn decode(buf: &[u8]) -> Result<Option<(Frame, usize)>, DecodeError> {
    if buf.len() < 2 {
        if !buf.is_empty() && buf[0] != MAGIC[0] {
            return Err(DecodeError::BadMagic { got: [buf[0], 0] });
        }
        return Ok(None);
    }
    if buf[0] != MAGIC[0] || buf[1] != MAGIC[1] {
        return Err(DecodeError::BadMagic {
            got: [buf[0], buf[1]],
        });
    }
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let version = buf[2];
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(DecodeError::BadVersion { got: version });
    }
    let ty = buf[3];
    let len = u32::from_le_bytes(buf[4..8].try_into().unwrap()) as usize;
    if len > MAX_PAYLOAD {
        return Err(DecodeError::Oversize { len });
    }
    let Some(end) = HEADER_LEN.checked_add(len) else {
        return Err(DecodeError::Oversize { len });
    };
    if buf.len() < end {
        return Ok(None);
    }
    let frame = decode_payload(version, ty, &buf[HEADER_LEN..end])?;
    Ok(Some((frame, end)))
}

/// Writes one frame to a blocking stream.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    let bytes = frame.encode();
    w.write_all(&bytes)
}

/// A connection-level read failure.
#[derive(Debug)]
pub enum ReadError {
    /// The transport failed (or closed mid-frame).
    Io(io::Error),
    /// The peer sent bytes that are not a frame; framing is lost and the
    /// connection must be dropped.
    Decode(DecodeError),
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Decode(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for ReadError {}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Reads one frame from a blocking stream.
///
/// Returns `Ok(None)` on a clean end-of-stream *at a frame boundary*; a
/// peer that disappears mid-frame is an [`ReadError::Io`] with
/// `UnexpectedEof`.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Frame>, ReadError> {
    Ok(read_frame_counted(r)?.map(|(frame, _)| frame))
}

/// [`read_frame`], also reporting how many wire bytes the frame occupied
/// (header + payload) — the server's uplink byte accounting reads this
/// instead of re-encoding the frame.
pub fn read_frame_counted<R: Read>(r: &mut R) -> Result<Option<(Frame, usize)>, ReadError> {
    let mut header = [0u8; HEADER_LEN];
    let mut got = 0;
    while got < HEADER_LEN {
        match r.read(&mut header[got..])? {
            0 if got == 0 => return Ok(None),
            0 => {
                return Err(ReadError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                )))
            }
            n => got += n,
        }
    }
    // Validate the header before allocating the payload.
    match decode(&header) {
        Ok(_) => {}
        Err(e) => return Err(ReadError::Decode(e)),
    }
    let len = u32::from_le_bytes(header[4..8].try_into().unwrap()) as usize;
    let mut buf = Vec::with_capacity(HEADER_LEN + len);
    buf.extend_from_slice(&header);
    buf.resize(HEADER_LEN + len, 0);
    r.read_exact(&mut buf[HEADER_LEN..])?;
    match decode(&buf) {
        Ok(Some((frame, consumed))) => {
            debug_assert_eq!(consumed, buf.len());
            Ok(Some((frame, consumed)))
        }
        // A full header + payload must decode or error, never ask for more.
        Ok(None) => Err(ReadError::Decode(DecodeError::Malformed {
            frame: header[3],
            reason: "internal: complete frame decoded as incomplete",
        })),
        Err(e) => Err(ReadError::Decode(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let bytes = f.encode();
        let (decoded, consumed) = decode(&bytes).expect("valid").expect("complete");
        assert_eq!(consumed, bytes.len());
        assert_eq!(decoded, f);
        // Truncated prefixes are Incomplete (Ok(None)) or a typed error —
        // never a bogus frame, never a panic.
        for cut in 0..bytes.len() {
            match decode(&bytes[..cut]) {
                Ok(None) | Err(_) => {}
                Ok(Some(_)) => panic!("decoded a frame from a {cut}-byte prefix"),
            }
        }
    }

    fn spectrum() -> AoaSpectrum {
        AoaSpectrum::from_fn(720, |t| (t.sin().abs() + 0.25) * 3.5)
    }

    #[test]
    fn all_frame_types_roundtrip_bit_exact() {
        roundtrip(Frame::SubmitSpectrum {
            ap_id: 3,
            age: 7,
            spectrum: spectrum(),
        });
        roundtrip(Frame::SubmitKeyed {
            key: 0x0123_4567_89AB_CDEF,
            ap_id: 5,
            age: 1,
            spectrum: spectrum(),
        });
        roundtrip(Frame::LocalizeKey {
            key: 42,
            deadline_ms: 75,
        });
        // Lossless compressed frames round-trip any spectrum bit-exactly;
        // quantized frames round-trip grid-snapped spectra bit-exactly
        // (quantization is idempotent, so construct on the grid).
        roundtrip(Frame::SubmitCompressed {
            ap_id: 1,
            age: 3,
            mode: CompressedMode::Lossless,
            spectrum: spectrum(),
        });
        roundtrip(Frame::SubmitCompressed {
            ap_id: 1,
            age: 3,
            mode: CompressedMode::Quantized,
            spectrum: codec::quantized(&spectrum()),
        });
        roundtrip(Frame::SubmitCompressedKeyed {
            key: 0xFEED_F00D,
            ap_id: 4,
            age: 0,
            mode: CompressedMode::Lossless,
            spectrum: spectrum(),
        });
        roundtrip(Frame::SubmitCompressedKeyed {
            key: 0xFEED_F00D,
            ap_id: 4,
            age: 0,
            mode: CompressedMode::Quantized,
            spectrum: codec::quantized(&spectrum()),
        });
        roundtrip(Frame::ReportFailure { ap_id: 2 });
        roundtrip(Frame::Localize { deadline_ms: 150 });
        roundtrip(Frame::ClearSession);
        roundtrip(Frame::Ping { token: 0xDEAD_BEEF });
        roundtrip(Frame::SubmitAck { observations: 6 });
        roundtrip(Frame::Fix {
            x: 12.3456789,
            y: -0.25,
            likelihood: 1e-42,
            health: vec![
                ApHealthReport {
                    ap_id: 0,
                    status: ApStatus::Healthy,
                    consecutive_failures: 0,
                },
                ApHealthReport {
                    ap_id: 5,
                    status: ApStatus::Down,
                    consecutive_failures: 9,
                },
            ],
        });
        roundtrip(Frame::Failed {
            error: LocalizeError::NoObservations,
        });
        roundtrip(Frame::Failed {
            error: LocalizeError::QuorumNotMet {
                available: 1,
                required: 2,
                stale: 3,
                down: 4,
                degenerate: 5,
            },
        });
        roundtrip(Frame::Failed {
            error: LocalizeError::ResolutionMismatch {
                observation: 1,
                bins: 360,
                expected: 720,
            },
        });
        roundtrip(Frame::Overloaded { retry_after_ms: 25 });
        roundtrip(Frame::DeadlineExceeded);
        roundtrip(Frame::Pong { token: 1 });
        roundtrip(Frame::ProtocolError {
            code: 4,
            message: "ap index out of range".into(),
        });
        roundtrip(Frame::ShuttingDown);
        roundtrip(Frame::MetricsQuery);
        roundtrip(Frame::MetricsReport {
            text: "# TYPE at_serve_requests_total counter\nat_serve_requests_total 3\n".into(),
        });
        roundtrip(Frame::Reconfigure {
            op: TopologyOp::Add {
                pose: ApPose {
                    center: pt(4.25, -1.5),
                    axis_angle: 0.75,
                },
            },
        });
        roundtrip(Frame::Reconfigure {
            op: TopologyOp::Remove { ap_id: 3 },
        });
        roundtrip(Frame::Reconfigure {
            op: TopologyOp::Move {
                ap_id: 1,
                pose: ApPose {
                    center: pt(-2.0, 8.125),
                    axis_angle: 2.5,
                },
            },
        });
        roundtrip(Frame::TopologyQuery);
        roundtrip(Frame::TopologyInfo {
            epoch: 3,
            fingerprint: 0xDEAD_BEEF_CAFE_F00D,
            poses: vec![
                ApPose {
                    center: pt(0.0, 0.0),
                    axis_angle: 0.0,
                },
                ApPose {
                    center: pt(10.5, 6.25),
                    axis_angle: 1.5,
                },
            ],
        });
    }

    #[test]
    fn metrics_frames_are_version_gated() {
        // The scrape pair encodes under v4; every older header is the
        // typed VersionGated error, never a misparse.
        let mut bytes = Frame::MetricsQuery.encode();
        assert_eq!(bytes[2], 4, "metrics frames declare v4 on the wire");
        for old in 1..4u8 {
            bytes[2] = old;
            assert_eq!(
                decode(&bytes),
                Err(DecodeError::VersionGated {
                    frame: 0x0A,
                    got: old,
                    need: 4,
                })
            );
        }
    }

    #[test]
    fn topology_frames_are_version_gated() {
        // The topology trio encodes under v5; every older header is the
        // typed VersionGated error, never a misparse.
        let mut bytes = Frame::TopologyQuery.encode();
        assert_eq!(bytes[2], 5, "topology frames declare v5 on the wire");
        for old in 1..5u8 {
            bytes[2] = old;
            assert_eq!(
                decode(&bytes),
                Err(DecodeError::VersionGated {
                    frame: 0x0C,
                    got: old,
                    need: 5,
                })
            );
        }
        // Legacy frames still encode under their original versions, so
        // old peers keep working untouched by the bump.
        assert_eq!(Frame::Ping { token: 1 }.encode()[2], 1);
        assert_eq!(Frame::MetricsQuery.encode()[2], 4);
    }

    #[test]
    fn reconfigure_rejects_garbage_ops() {
        // A Reconfigure frame whose payload is not a TopologyOp is a typed
        // Malformed error, not a panic.
        let mut bytes = Frame::Reconfigure {
            op: TopologyOp::Remove { ap_id: 0 },
        }
        .encode();
        let last = bytes.len() - 1;
        bytes[HEADER_LEN] = 0xEE; // corrupt the op tag
        assert!(matches!(
            decode(&bytes),
            Err(DecodeError::Malformed { frame: 0x0B, .. })
        ));
        bytes[HEADER_LEN] = 2; // valid Remove tag, then truncate the id
        bytes[last] = 0xFF;
        let _ = decode(&bytes); // any typed result is fine; must not panic
    }

    #[test]
    fn oversize_metrics_text_truncates_to_the_cap() {
        let frame = Frame::MetricsReport {
            text: "x".repeat(MAX_METRICS_TEXT + 500),
        };
        let bytes = frame.encode();
        assert!(bytes.len() <= HEADER_LEN + MAX_PAYLOAD);
        match decode(&bytes).expect("valid").expect("complete").0 {
            Frame::MetricsReport { text } => assert_eq!(text.len(), MAX_METRICS_TEXT),
            other => panic!("wanted MetricsReport, got {other:?}"),
        }
    }

    #[test]
    fn header_errors_are_typed() {
        assert_eq!(
            decode(b"XT\x01\x01\x00\x00\x00\x00"),
            Err(DecodeError::BadMagic { got: [b'X', b'T'] })
        );
        assert_eq!(
            decode(b"AT\x09\x01\x00\x00\x00\x00"),
            Err(DecodeError::BadVersion { got: 9 })
        );
        assert_eq!(
            decode(b"AT\x01\x7f\x00\x00\x00\x00"),
            Err(DecodeError::UnknownType { got: 0x7f })
        );
        let oversize = [b'A', b'T', VERSION, ft::PING, 0xff, 0xff, 0xff, 0xff];
        assert_eq!(
            decode(&oversize),
            Err(DecodeError::Oversize { len: 0xffff_ffff })
        );
    }

    #[test]
    fn keyed_frames_are_version_gated() {
        // Keyed frames encode under version 2; legacy frames stay at 1,
        // so old peers keep decoding them.
        assert_eq!(
            Frame::LocalizeKey {
                key: 1,
                deadline_ms: 0
            }
            .encode()[2],
            2
        );
        assert_eq!(Frame::Ping { token: 1 }.encode()[2], 1);
        // The same keyed bytes under a version-1 header are a typed
        // VersionGated error, not an UnknownType or a misparse.
        let mut bytes = Frame::LocalizeKey {
            key: 7,
            deadline_ms: 10,
        }
        .encode();
        bytes[2] = 1;
        assert_eq!(
            decode(&bytes),
            Err(DecodeError::VersionGated {
                frame: 0x07,
                got: 1,
                need: 2,
            })
        );
        // A version beyond VERSION stays BadVersion.
        bytes[2] = VERSION + 1;
        assert_eq!(
            decode(&bytes),
            Err(DecodeError::BadVersion { got: VERSION + 1 })
        );
    }

    #[test]
    fn compressed_frames_are_version_gated() {
        // Compressed frames declare v3 on the wire; the same bytes under
        // a v1 or v2 header are the typed VersionGated error — never a
        // misparse, never accepted.
        let mut bytes = Frame::SubmitCompressed {
            ap_id: 0,
            age: 0,
            mode: CompressedMode::Lossless,
            spectrum: spectrum(),
        }
        .encode();
        assert_eq!(bytes[2], 3);
        for old in [1, 2] {
            bytes[2] = old;
            assert_eq!(
                decode(&bytes),
                Err(DecodeError::VersionGated {
                    frame: 0x08,
                    got: old,
                    need: 3,
                })
            );
        }
        // A corrupt codec blob under the right version is Malformed.
        let mut bytes = Frame::SubmitCompressed {
            ap_id: 0,
            age: 0,
            mode: CompressedMode::Lossless,
            spectrum: spectrum(),
        }
        .encode();
        bytes[HEADER_LEN + 12] = 0xBB; // clobber the codec mode byte
        assert!(matches!(decode(&bytes), Err(DecodeError::Malformed { .. })));
    }

    #[test]
    fn hostile_spectra_are_rejected() {
        // NaN values must not reach AoaSpectrum::from_values.
        let mut bytes = Frame::SubmitSpectrum {
            ap_id: 0,
            age: 0,
            spectrum: spectrum(),
        }
        .encode();
        let nan = f64::NAN.to_bits().to_le_bytes();
        bytes[HEADER_LEN + 16..HEADER_LEN + 24].copy_from_slice(&nan);
        assert!(matches!(decode(&bytes), Err(DecodeError::Malformed { .. })));
        // A bin count that disagrees with the payload is malformed.
        let mut bytes = Frame::SubmitSpectrum {
            ap_id: 0,
            age: 0,
            spectrum: spectrum(),
        }
        .encode();
        bytes[HEADER_LEN + 12..HEADER_LEN + 16].copy_from_slice(&10_000u32.to_le_bytes());
        assert!(matches!(decode(&bytes), Err(DecodeError::Malformed { .. })));
    }

    #[test]
    fn trailing_bytes_are_malformed() {
        let mut bytes = Frame::Ping { token: 1 }.encode();
        bytes.push(0);
        let len = (bytes.len() - HEADER_LEN) as u32;
        bytes[4..8].copy_from_slice(&len.to_le_bytes());
        assert!(matches!(decode(&bytes), Err(DecodeError::Malformed { .. })));
    }

    #[test]
    fn streamed_frames_decode_one_at_a_time() {
        let mut buf = Vec::new();
        Frame::Ping { token: 1 }.encode_into(&mut buf);
        Frame::ClearSession.encode_into(&mut buf);
        let (f1, used) = decode(&buf).unwrap().unwrap();
        assert_eq!(f1, Frame::Ping { token: 1 });
        let (f2, used2) = decode(&buf[used..]).unwrap().unwrap();
        assert_eq!(f2, Frame::ClearSession);
        assert_eq!(used + used2, buf.len());
    }

    #[test]
    fn read_write_frame_over_a_pipe() {
        let f = Frame::Fix {
            x: 1.0,
            y: 2.0,
            likelihood: 0.5,
            health: vec![],
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &f).unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(f));
        assert_eq!(read_frame(&mut cursor).unwrap(), None); // clean EOF
    }
}
