//! Bounded MPMC queues with closing semantics — the backpressure
//! primitive between the server's stages.
//!
//! Each queue has a hard capacity and two personalities on the producer
//! side: [`Bounded::try_push`] for admission control (fail fast so the
//! caller can shed load with a typed `Overloaded` frame) and
//! [`Bounded::push`] for internal hand-offs (block so a slow downstream
//! stage applies backpressure upstream instead of growing memory).
//!
//! Closing is drain-first: after [`Bounded::close`] producers are refused
//! but consumers keep popping until the queue is empty, which is exactly
//! the graceful-shutdown contract ("finish what was admitted, accept
//! nothing new"). Queue depth is exported continuously as the
//! `at_serve_queue_depth{queue=..}` gauge.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

struct Inner<T> {
    q: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue (mutex + condvars; the
/// hand-off rate here is thousands per second, far below contention).
pub struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
    depth: Arc<at_obs::metrics::Gauge>,
}

impl<T> Bounded<T> {
    /// A queue holding at most `cap` items, exporting its depth under the
    /// gauge label `queue=label`.
    ///
    /// # Panics
    /// Panics if `cap` is zero.
    pub fn new(cap: usize, label: &'static str) -> Self {
        assert!(cap > 0, "a bounded queue needs capacity");
        Self {
            inner: Mutex::new(Inner {
                q: VecDeque::with_capacity(cap),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
            depth: at_obs::global().gauge("at_serve_queue_depth", &[("queue", label)]),
        }
    }

    /// Capacity the queue was built with.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").q.len()
    }

    /// Whether the queue currently holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking push: `Err(item)` back immediately when the queue is
    /// full or closed. This is the admission-control edge — the caller
    /// decides what "refused" means (shed, retry, error frame).
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut g = self.inner.lock().expect("queue poisoned");
        if g.closed || g.q.len() >= self.cap {
            return Err(item);
        }
        g.q.push_back(item);
        self.depth.set(g.q.len() as f64);
        drop(g);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking push: waits for space, returning `Err(item)` only if the
    /// queue closes while waiting. Backpressure for internal hand-offs.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut g = self.inner.lock().expect("queue poisoned");
        while !g.closed && g.q.len() >= self.cap {
            g = self.not_full.wait(g).expect("queue poisoned");
        }
        if g.closed {
            return Err(item);
        }
        g.q.push_back(item);
        self.depth.set(g.q.len() as f64);
        drop(g);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking pop: waits for an item, returning `None` only once the
    /// queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = g.q.pop_front() {
                self.depth.set(g.q.len() as f64);
                drop(g);
                self.not_full.notify_one();
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self.not_empty.wait(g).expect("queue poisoned");
        }
    }

    /// Pop with a wait bound: `None` on timeout or on closed-and-drained.
    /// Used by the batcher to cap its coalescing window.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let deadline = std::time::Instant::now() + timeout;
        let mut g = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = g.q.pop_front() {
                self.depth.set(g.q.len() as f64);
                drop(g);
                self.not_full.notify_one();
                return Some(item);
            }
            if g.closed {
                return None;
            }
            let now = std::time::Instant::now();
            let left = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())?;
            let (guard, res) = self
                .not_empty
                .wait_timeout(g, left)
                .expect("queue poisoned");
            g = guard;
            if res.timed_out() && g.q.is_empty() {
                return None;
            }
        }
    }

    /// Closes the queue: producers are refused from now on, consumers
    /// drain what is already queued and then see `None`.
    pub fn close(&self) {
        let mut g = self.inner.lock().expect("queue poisoned");
        g.closed = true;
        drop(g);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn try_push_sheds_when_full() {
        let q = Bounded::new(2, "unit_shed");
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok());
    }

    #[test]
    fn close_drains_then_stops() {
        let q = Bounded::new(4, "unit_drain");
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.try_push("c"), Err("c"));
        // Consumers still see everything admitted before the close.
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocking_push_applies_backpressure() {
        let q = Arc::new(Bounded::new(1, "unit_backpressure"));
        q.try_push(0).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.push(1).is_ok())
        };
        // The producer is stuck until we pop.
        thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn pop_timeout_returns_none_when_idle() {
        let q: Bounded<u8> = Bounded::new(1, "unit_timeout");
        let start = std::time::Instant::now();
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), None);
        assert!(start.elapsed() >= Duration::from_millis(9));
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q: Arc<Bounded<u8>> = Arc::new(Bounded::new(1, "unit_wake"));
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.pop())
        };
        thread::sleep(Duration::from_millis(10));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }
}
