//! The thread-pool TCP location server.
//!
//! Request path (one bounded queue between each pair of stages, so every
//! stage applies backpressure to the one before it):
//!
//! ```text
//! conn threads ──try_push──▶ admission queue ──▶ batcher ──push──▶ exec
//!   (1/socket)    shed ⇒ Overloaded      (coalesce ≤ window)   queue
//!                                                               │
//!                                         workers ◀─────────────┘
//!                                  (fuse_batch on the shared engine)
//! ```
//!
//! - **Admission control** is the `try_push` edge: when the admission
//!   queue is full the request is *refused* with a typed
//!   [`Frame::Overloaded`] carrying a retry hint — the server never queues
//!   unboundedly and stays responsive under any offered load.
//! - **Deadlines** travel from the client as a relative budget; the clock
//!   starts at frame receipt and is checked at every stage boundary
//!   *before* the expensive fusion sweep, so a request that can no longer
//!   make its deadline costs a queue slot, not an engine walk.
//! - **Batching** coalesces localize requests arriving within
//!   [`BatchPolicy::window`] into one [`at_core::fuse_batch`] sweep over
//!   the shared precomputed engine.
//! - **Shutdown** is drain-then-stop: the admission queue closes (new
//!   requests see [`Frame::ShuttingDown`]), everything already admitted is
//!   fused and answered, then the stage threads and connections wind down
//!   in pipeline order.
//!
//! Fusion itself is [`at_core::plan_fusion`]/[`at_core::execute_fusion`] —
//! the *same* code path as the in-process `ArrayTrackServer::try_localize`
//! — so a networked fix over a healthy deployment is bit-exact with the
//! in-process one, and degraded deployments surface the same
//! [`at_core::health::LocalizeError`] values over the wire.

use crate::batch::{gather, AdaptivePolicy, BatchController, BatchPolicy};
use crate::codec;
use crate::proto::{self, ApHealthReport, ClientKey, Frame, ReadError, HEADER_LEN};
use crate::queue::Bounded;
use crate::store::{SessionPolicy, SessionStore};
use at_config::{ConfigError, SystemConfig, TopologyOp};
use at_core::health::{HealthPolicy, HealthTracker};
use at_core::synthesis::{ApPose, SearchRegion};
use at_core::{AoaSpectrum, FusedObservation, LocalizationEngine, LocationEstimate};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock};
use std::thread;
use std::time::{Duration, Instant};

/// What the service localizes against: the deployment geometry and the
/// degradation policy the server *starts* with — topology epoch 0.
/// [`Frame::Reconfigure`] can change the AP set on a live server; see
/// [`ServerHandle`] and the `at_config` crate for the epoch semantics.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// AP poses, indexed by the wire protocol's `ap_id`.
    pub poses: Vec<ApPose>,
    /// Search region (and grid pitch) fixes are computed over.
    pub region: SearchRegion,
    /// Spectrum resolution submissions must eventually match (mismatches
    /// are accepted at submit and refused at localize with
    /// [`at_core::health::LocalizeError::ResolutionMismatch`], like the
    /// in-process server).
    pub bins: usize,
    /// Health/quorum policy for degraded-deployment fusion.
    pub policy: HealthPolicy,
}

impl ServiceConfig {
    /// Validates the configuration: a typed [`ConfigError`] instead of a
    /// panic, so a bad config arriving over the wire (or from a caller)
    /// is *refused* cleanly — the server never takes it down.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.to_system(SessionPolicy::default()).validate()
    }

    /// The canonical [`SystemConfig`] this service config plus a session
    /// policy describes — the single source every sizing decision
    /// (engine, health tracker, session store) derives from, and the
    /// thing the epoch fingerprint is computed over.
    pub fn to_system(&self, session: SessionPolicy) -> SystemConfig {
        SystemConfig {
            poses: self.poses.clone(),
            region: self.region,
            bins: self.bins,
            health: self.policy,
            session,
            codec: at_config::CodecDefault::default(),
        }
    }
}

/// Server runtime shape: thread counts, queue depths, batching.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Fusion worker threads.
    pub workers: usize,
    /// Admission queue depth — the *only* place requests wait; beyond it
    /// they are shed with [`Frame::Overloaded`].
    pub admission_depth: usize,
    /// Executor queue depth, in batches (small: its only job is keeping
    /// workers fed while the batcher gathers the next batch).
    pub exec_depth: usize,
    /// Coalescing policy for localize requests (`batch.window` is the
    /// starting window when adaptation is on).
    pub batch: BatchPolicy,
    /// Adaptive window sizing from the observed admission-queue dwell;
    /// `None` pins the window at `batch.window`.
    pub adaptive: Option<AdaptivePolicy>,
    /// Retry hint attached to [`Frame::Overloaded`] responses.
    pub retry_after_ms: u32,
    /// Residency policy of the keyed session store (idle timeout,
    /// resident-spectra cap, reaper cadence).
    pub session: SessionPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            admission_depth: 64,
            exec_depth: 4,
            batch: BatchPolicy::default(),
            adaptive: Some(AdaptivePolicy::default()),
            retry_after_ms: 10,
            session: SessionPolicy::default(),
        }
    }
}

impl ServeConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on zero workers, zero queue depths, or an inconsistent
    /// adaptive or session policy.
    pub fn validate(&self) {
        assert!(self.workers >= 1, "need at least one worker");
        assert!(self.admission_depth >= 1, "admission queue needs depth");
        assert!(self.exec_depth >= 1, "exec queue needs depth");
        self.batch.validate();
        if let Some(a) = &self.adaptive {
            a.validate();
        }
        self.session.validate();
    }
}

/// One spectrum accumulated in a connection's session (legacy path) or
/// snapshotted from the keyed store. The spectrum rides behind an `Arc` so
/// a store snapshot is a pointer clone per slot — and so a submit racing a
/// localize for the same key replaces the pointer whole, never the bins.
#[derive(Clone)]
struct SessionObs {
    ap_id: u32,
    age: u64,
    spectrum: Arc<AoaSpectrum>,
}

/// One admitted localize request traveling through the stage queues.
struct Job {
    obs: Vec<SessionObs>,
    /// Absolute expiry (frame receipt + the client's relative budget).
    deadline: Option<Instant>,
    /// When the request entered the admission queue (queue-dwell metric).
    enqueued: Instant,
    reply: mpsc::SyncSender<Frame>,
}

#[derive(Default)]
struct Stats {
    connections: AtomicU64,
    requests: AtomicU64,
    shed: AtomicU64,
    deadline_missed: AtomicU64,
    fixes: AtomicU64,
    failures: AtomicU64,
    submits_raw: AtomicU64,
    submits_compressed: AtomicU64,
    uplink_raw_bytes: AtomicU64,
    uplink_compressed_bytes: AtomicU64,
    uplink_raw_equiv_bytes: AtomicU64,
    reconfigures: AtomicU64,
}

/// A point-in-time copy of the server's request counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted.
    pub connections: u64,
    /// Localize requests received (including shed ones).
    pub requests: u64,
    /// Localize requests refused by admission control.
    pub shed: u64,
    /// Localize requests dropped because their deadline expired in queue.
    pub deadline_missed: u64,
    /// Fixes produced.
    pub fixes: u64,
    /// Typed localize failures returned (quorum, resolution, empty).
    pub failures: u64,
    /// Keyed sessions currently resident in the session store.
    pub sessions_resident: u64,
    /// Spectra currently resident in the session store (the capped
    /// quantity).
    pub spectra_resident: u64,
    /// Keyed sessions created over the server's lifetime.
    pub sessions_created: u64,
    /// Keyed sessions evicted by the idle-timeout reaper.
    pub sessions_evicted_idle: u64,
    /// Keyed sessions evicted by resident-spectra cap pressure.
    pub sessions_evicted_cap: u64,
    /// Raw (`f64`-bin) spectrum submissions admitted.
    pub submits_raw: u64,
    /// Compressed (v3) spectrum submissions admitted.
    pub submits_compressed: u64,
    /// Wire bytes of the raw submissions (header + payload).
    pub uplink_raw_bytes: u64,
    /// Wire bytes of the compressed submissions (header + payload).
    pub uplink_compressed_bytes: u64,
    /// What the compressed submissions would have cost as raw frames —
    /// the numerator of the compression ratio.
    pub uplink_raw_equiv_bytes: u64,
    /// Current topology epoch (0 = the config the server started with).
    pub epoch: u64,
    /// Topology reconfigurations applied over the server's lifetime.
    pub reconfigures: u64,
    /// Keyed sessions evicted because a topology change left them empty.
    pub sessions_evicted_topology: u64,
}

/// The capture tap: a sink for every store-mutating event the server
/// admits, called at admission time (post-decompress, pre-store) so what
/// it sees is exactly what the session store and fusion will see. The
/// `at-replay` recorder implements this to journal keyed traffic for
/// deterministic replay; implementations must be cheap and must never
/// panic — they run on the serving path.
///
/// Only the keyed multi-process path is tapped ([`Frame::SubmitKeyed`],
/// [`Frame::LocalizeKey`], [`Frame::ReportFailure`], and the reaper's
/// tick/idle events); legacy v1 per-connection sessions live and die with
/// their socket and are not recordable.
pub trait RecordTap: Send + Sync {
    /// A keyed spectrum was admitted (about to enter the session store).
    fn submit(&self, key: ClientKey, ap_id: u32, age: u64, spectrum: &AoaSpectrum);
    /// An acquisition failure was reported for `ap_id`.
    fn failure(&self, ap_id: u32);
    /// A keyed localize request was admitted; returns the tap's sequence
    /// number for it, echoed back through [`RecordTap::outcome`] once the
    /// reply is known.
    fn query(&self, key: ClientKey, deadline_ms: u32) -> u64;
    /// The reply produced for the query journaled as `query_seq`.
    fn outcome(&self, query_seq: u64, reply: &Frame);
    /// The reaper advanced the store's staleness tick by one interval.
    fn tick(&self);
    /// The reaper evicted these idle sessions.
    fn idle_reap(&self, keys: &[ClientKey]);
    /// A topology reconfiguration committed: the server is now on
    /// `epoch`, whose canonical config fingerprint is `fingerprint`,
    /// reached by applying `op` to the previous epoch's config. Journaled
    /// *inside* the epoch swap's exclusive section, so every record
    /// before it belongs to the old epoch and every record after it to
    /// the new one — the property replay's bit-exactness rests on.
    fn epoch_change(&self, epoch: u64, fingerprint: u64, op: &TopologyOp);
}

/// One topology epoch's immutable state: the config, its fingerprint,
/// and the engine precomputed from it. Swapped whole (behind
/// [`Shared::topo`]) by a reconfiguration; everything in here is
/// read-only once published, so within an epoch every fix is computed
/// from identical state — the bit-exactness unit.
struct TopoState {
    epoch: u64,
    config: SystemConfig,
    fingerprint: u64,
    engine: Arc<LocalizationEngine>,
}

struct Shared {
    /// The current epoch. Read-locked across every journaled admission
    /// (tap call + store/queue mutation as one unit), write-locked only
    /// by the epoch swap — so the journal's record order is exactly the
    /// order state changed, and replay can reproduce it.
    topo: RwLock<TopoState>,
    health: Mutex<HealthTracker>,
    store: SessionStore,
    draining: AtomicBool,
    /// True while a reconfiguration is draining in-flight localizes; new
    /// localizes are shed with [`Frame::Overloaded`] so the drain
    /// terminates under any offered load.
    swapping: AtomicBool,
    /// Localize requests admitted but not yet replied. The epoch swap
    /// waits for zero before touching state, so no fix ever mixes two
    /// epochs' engines or store contents.
    in_flight: AtomicUsize,
    /// Serializes administrators: one reconfiguration at a time.
    reconfig: Mutex<()>,
    retry_after_ms: u32,
    stats: Stats,
    tap: Option<Arc<dyn RecordTap>>,
}

/// Spawns a location server and returns a handle to it.
///
/// Binds `addr` (use port 0 for an ephemeral loopback port), precomputes
/// the localization engine for the deployment, and starts the acceptor,
/// batcher, and worker threads. The server runs until
/// [`ServerHandle::shutdown`] (or drop).
pub fn spawn(
    service: ServiceConfig,
    cfg: ServeConfig,
    addr: impl ToSocketAddrs,
) -> io::Result<ServerHandle> {
    spawn_recorded(service, cfg, addr, None)
}

/// [`spawn`] with the record toggle on: every admitted keyed event is
/// also fed to `tap` (see [`RecordTap`]) — the hook the `at-replay`
/// journal recorder plugs into. `None` is exactly [`spawn`].
pub fn spawn_recorded(
    service: ServiceConfig,
    cfg: ServeConfig,
    addr: impl ToSocketAddrs,
    tap: Option<Arc<dyn RecordTap>>,
) -> io::Result<ServerHandle> {
    cfg.validate();
    // Every sizing decision below — engine, health tracker, session
    // store — derives from this one canonical config, so the three can
    // never disagree about the AP count, and the epoch-0 fingerprint
    // pins exactly what the server started from.
    let system = service.to_system(cfg.session);
    system
        .validate()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;

    let n_aps = system.n_aps();
    let fingerprint = system.fingerprint();
    let engine = Arc::new(LocalizationEngine::for_epoch(
        &system.poses,
        system.region,
        system.bins,
        0,
    ));
    at_obs::global()
        .gauge(at_obs::names::SERVE_TOPOLOGY_EPOCH, &[])
        .set(0.0);
    let shared = Arc::new(Shared {
        health: Mutex::new(HealthTracker::new(n_aps)),
        store: SessionStore::new(n_aps, system.session),
        topo: RwLock::new(TopoState {
            epoch: 0,
            config: system,
            fingerprint,
            engine,
        }),
        draining: AtomicBool::new(false),
        swapping: AtomicBool::new(false),
        in_flight: AtomicUsize::new(0),
        reconfig: Mutex::new(()),
        retry_after_ms: cfg.retry_after_ms,
        stats: Stats::default(),
        tap,
    });
    let admission = Arc::new(Bounded::new(cfg.admission_depth, "admission"));
    let exec: Arc<Bounded<Vec<Job>>> = Arc::new(Bounded::new(cfg.exec_depth, "exec"));

    let batcher = {
        let admission = Arc::clone(&admission);
        let exec = Arc::clone(&exec);
        let shared = Arc::clone(&shared);
        let controller = BatchController::new(cfg.batch, cfg.adaptive);
        thread::Builder::new()
            .name("at-serve-batcher".into())
            .spawn(move || run_batcher(&admission, &exec, &shared, controller))?
    };

    let reaper_stop = Arc::new(ReaperStop::default());
    let reaper = {
        let shared = Arc::clone(&shared);
        let stop = Arc::clone(&reaper_stop);
        thread::Builder::new()
            .name("at-serve-reaper".into())
            .spawn(move || run_reaper(&shared, &stop))?
    };

    let workers = (0..cfg.workers)
        .map(|i| {
            let exec = Arc::clone(&exec);
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name(format!("at-serve-worker-{i}"))
                .spawn(move || run_worker(&exec, &shared))
        })
        .collect::<io::Result<Vec<_>>>()?;

    let accept_stop = Arc::new(AtomicBool::new(false));
    let conn_threads: Arc<Mutex<Vec<thread::JoinHandle<()>>>> = Arc::default();
    let conn_socks: Arc<Mutex<Vec<TcpStream>>> = Arc::default();
    let acceptor = {
        let shared = Arc::clone(&shared);
        let admission = Arc::clone(&admission);
        let accept_stop = Arc::clone(&accept_stop);
        let conn_threads = Arc::clone(&conn_threads);
        let conn_socks = Arc::clone(&conn_socks);
        thread::Builder::new()
            .name("at-serve-acceptor".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    shared.stats.connections.fetch_add(1, Ordering::Relaxed);
                    at_obs::count!("at_serve_connections_total");
                    if let Ok(clone) = stream.try_clone() {
                        conn_socks.lock().expect("registry poisoned").push(clone);
                    }
                    let shared = Arc::clone(&shared);
                    let admission = Arc::clone(&admission);
                    if let Ok(handle) = thread::Builder::new()
                        .name("at-serve-conn".into())
                        .spawn(move || run_conn(stream, &shared, &admission))
                    {
                        conn_threads.lock().expect("registry poisoned").push(handle);
                    }
                }
            })?
    };

    Ok(ServerHandle {
        addr: local_addr,
        shared,
        admission,
        accept_stop,
        acceptor: Some(acceptor),
        batcher: Some(batcher),
        reaper: Some(reaper),
        reaper_stop,
        workers,
        conn_threads,
        conn_socks,
    })
}

/// Stop flag + wakeup for the background reaper thread.
#[derive(Default)]
struct ReaperStop {
    stopped: Mutex<bool>,
    cv: Condvar,
}

/// The background reaper: advances the store's staleness tick every
/// `refresh_interval` (so silent APs' spectra age into
/// `HealthPolicy::max_spectrum_age` staleness) and sweeps idle sessions
/// every `reap_interval`. Wakes immediately on shutdown.
fn run_reaper(shared: &Shared, stop: &ReaperStop) {
    let policy = *shared.store.policy();
    let mut next_tick = Instant::now() + policy.refresh_interval;
    let mut next_reap = Instant::now() + policy.reap_interval;
    let mut stopped = stop.stopped.lock().expect("reaper stop poisoned");
    loop {
        if *stopped {
            return;
        }
        let now = Instant::now();
        // Catch up elapsed intervals even if the thread overslept, so
        // real time maps to tick count. Journal before apply, matching
        // the submit path (tap at admission, then the store mutation).
        while now >= next_tick {
            // Under the topo read guard so the journal record and the
            // store mutation land on the same side of any epoch swap.
            let _topo = shared.topo.read().expect("topo poisoned");
            if let Some(tap) = &shared.tap {
                tap.tick();
            }
            shared.store.advance_tick();
            next_tick += policy.refresh_interval;
        }
        if now >= next_reap {
            let _topo = shared.topo.read().expect("topo poisoned");
            let evicted = shared.store.reap_idle(now);
            if !evicted.is_empty() {
                if let Some(tap) = &shared.tap {
                    tap.idle_reap(&evicted);
                }
            }
            while now >= next_reap {
                next_reap += policy.reap_interval;
            }
        }
        let wake = next_tick.min(next_reap);
        let timeout = wake.saturating_duration_since(Instant::now());
        let (guard, _) = stop
            .cv
            .wait_timeout(stopped, timeout)
            .expect("reaper stop poisoned");
        stopped = guard;
    }
}

/// A running server: its address, live counters, and the shutdown switch.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    admission: Arc<Bounded<Job>>,
    accept_stop: Arc<AtomicBool>,
    acceptor: Option<thread::JoinHandle<()>>,
    batcher: Option<thread::JoinHandle<()>>,
    reaper: Option<thread::JoinHandle<()>>,
    reaper_stop: Arc<ReaperStop>,
    workers: Vec<thread::JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
    conn_socks: Arc<Mutex<Vec<TcpStream>>>,
}

impl ServerHandle {
    /// The address the server is listening on (resolves port 0 binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current topology epoch and its canonical config fingerprint.
    pub fn epoch(&self) -> (u64, u64) {
        let topo = self.shared.topo.read().expect("topo poisoned");
        (topo.epoch, topo.fingerprint)
    }

    /// Current request counters.
    pub fn stats(&self) -> StatsSnapshot {
        let s = &self.shared.stats;
        let store = self.shared.store.stats();
        let epoch = self.shared.topo.read().expect("topo poisoned").epoch;
        StatsSnapshot {
            epoch,
            reconfigures: s.reconfigures.load(Ordering::Relaxed),
            sessions_evicted_topology: store.evicted_topology,
            connections: s.connections.load(Ordering::Relaxed),
            requests: s.requests.load(Ordering::Relaxed),
            shed: s.shed.load(Ordering::Relaxed),
            deadline_missed: s.deadline_missed.load(Ordering::Relaxed),
            fixes: s.fixes.load(Ordering::Relaxed),
            failures: s.failures.load(Ordering::Relaxed),
            sessions_resident: store.resident_sessions,
            spectra_resident: store.resident_spectra,
            sessions_created: store.created,
            sessions_evicted_idle: store.evicted_idle,
            sessions_evicted_cap: store.evicted_cap,
            submits_raw: s.submits_raw.load(Ordering::Relaxed),
            submits_compressed: s.submits_compressed.load(Ordering::Relaxed),
            uplink_raw_bytes: s.uplink_raw_bytes.load(Ordering::Relaxed),
            uplink_compressed_bytes: s.uplink_compressed_bytes.load(Ordering::Relaxed),
            uplink_raw_equiv_bytes: s.uplink_raw_equiv_bytes.load(Ordering::Relaxed),
        }
    }

    /// Graceful drain-then-stop: refuse new work, finish and answer
    /// everything already admitted, then stop every thread. Idempotent;
    /// also runs on drop.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shutdown_inner();
        self.stats()
    }

    fn shutdown_inner(&mut self) {
        // 1. New localize requests see ShuttingDown; admitted ones drain.
        self.shared.draining.store(true, Ordering::Release);
        self.admission.close();
        // 2. Stop accepting; a self-connection unblocks the acceptor.
        self.accept_stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // 3. The batcher drains the admission queue, then closes exec;
        //    workers drain exec, answering every in-flight request. The
        //    reaper just stops — resident sessions die with the store.
        *self
            .reaper_stop
            .stopped
            .lock()
            .expect("reaper stop poisoned") = true;
        self.reaper_stop.cv.notify_all();
        if let Some(h) = self.reaper.take() {
            let _ = h.join();
        }
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // 4. Only now wind down connections. Workers have *sent* every
        //    admitted reply, but a connection thread may still be writing
        //    one to its socket — so cut only the read half: blocked
        //    readers wake with EOF and exit their loop, while in-flight
        //    reply writes complete.
        for sock in self.conn_socks.lock().expect("registry poisoned").drain(..) {
            let _ = sock.shutdown(std::net::Shutdown::Read);
        }
        let handles: Vec<_> = self
            .conn_threads
            .lock()
            .expect("registry poisoned")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Per-connection protocol-error codes (the `code` of
/// [`Frame::ProtocolError`]).
pub mod errcode {
    /// The frame could not be decoded; the connection is dropped.
    pub const UNDECODABLE: u8 = 0;
    /// `ap_id` does not name a deployment AP.
    pub const BAD_AP: u8 = 1;
    /// A server→client frame type arrived at the server.
    pub const NOT_A_REQUEST: u8 = 2;
    /// A keyed frame crossed the connection's role: an ingestion
    /// connection issued `LocalizeKey`, or a query connection issued
    /// `SubmitKeyed`.
    pub const ROLE_MISMATCH: u8 = 3;
    /// A `Reconfigure` op would produce an invalid topology (bad AP id,
    /// removing the last AP, non-finite pose). The op was refused and
    /// the epoch is unchanged.
    pub const BAD_CONFIG: u8 = 4;
}

/// What a connection has declared itself to be. The first keyed frame
/// types the connection; legacy (v1) frames are role-neutral and leave it
/// untyped.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Role {
    /// No keyed frame seen yet.
    Untyped,
    /// An AP process streaming `SubmitKeyed` (may not query).
    Ingest,
    /// An application issuing `LocalizeKey` (may not submit).
    App,
}

fn role_mismatch(wanted: &str, got: &str) -> Frame {
    Frame::ProtocolError {
        code: errcode::ROLE_MISMATCH,
        message: format!("connection is typed {got}; {wanted} frames are not allowed"),
    }
}

/// Uplink byte accounting at admission: every spectrum submission charges
/// its wire size to the `encoding`-labelled uplink counter; compressed
/// frames additionally record what the same spectrum would have cost raw,
/// which keeps the cumulative compression-ratio gauge honest. Runs before
/// the frame is normalized into its raw twin, because the mode is gone
/// after that.
fn account_uplink(shared: &Shared, frame: &Frame, wire_bytes: usize) {
    let (mode, bins, keyed) = match frame {
        Frame::SubmitSpectrum { spectrum, .. } => (None, spectrum.bins(), false),
        Frame::SubmitKeyed { spectrum, .. } => (None, spectrum.bins(), true),
        Frame::SubmitCompressed { mode, spectrum, .. } => (Some(*mode), spectrum.bins(), false),
        Frame::SubmitCompressedKeyed { mode, spectrum, .. } => (Some(*mode), spectrum.bins(), true),
        _ => return,
    };
    let wire = wire_bytes as u64;
    match mode {
        None => {
            shared.stats.submits_raw.fetch_add(1, Ordering::Relaxed);
            shared
                .stats
                .uplink_raw_bytes
                .fetch_add(wire, Ordering::Relaxed);
            at_obs::global()
                .counter(
                    at_obs::names::SERVE_UPLINK_BYTES_TOTAL,
                    &[("encoding", "raw")],
                )
                .add(wire);
        }
        Some(mode) => {
            // The raw twin of this frame: header + fixed fields + the
            // `u32` bin count + 8 bytes per bin.
            let fixed = if keyed { 8 + 4 + 8 } else { 4 + 8 };
            let raw_equiv = HEADER_LEN as u64 + fixed + codec::raw_wire_bytes(bins);
            let label = mode.encoding().label();
            let s = &shared.stats;
            s.submits_compressed.fetch_add(1, Ordering::Relaxed);
            let wire_total = s.uplink_compressed_bytes.fetch_add(wire, Ordering::Relaxed) + wire;
            let raw_total = s
                .uplink_raw_equiv_bytes
                .fetch_add(raw_equiv, Ordering::Relaxed)
                + raw_equiv;
            let obs = at_obs::global();
            obs.counter(
                at_obs::names::SERVE_UPLINK_BYTES_TOTAL,
                &[("encoding", label)],
            )
            .add(wire);
            obs.counter(
                at_obs::names::SERVE_COMPRESSED_FRAMES_TOTAL,
                &[("mode", label)],
            )
            .inc();
            obs.gauge(at_obs::names::SERVE_UPLINK_COMPRESSION_RATIO, &[])
                .set(raw_total as f64 / wire_total as f64);
        }
    }
}

fn run_conn(mut stream: TcpStream, shared: &Shared, admission: &Bounded<Job>) {
    let mut session: Vec<SessionObs> = Vec::new();
    let mut role = Role::Untyped;
    loop {
        let frame = match proto::read_frame_counted(&mut stream) {
            Ok(Some((f, wire_bytes))) => {
                account_uplink(shared, &f, wire_bytes);
                // A compressed submission, once decompressed and
                // accounted, is *exactly* its raw twin: same session
                // semantics, same role typing, same store path — the
                // codec is invisible past admission.
                match f {
                    Frame::SubmitCompressed {
                        ap_id,
                        age,
                        spectrum,
                        ..
                    } => Frame::SubmitSpectrum {
                        ap_id,
                        age,
                        spectrum,
                    },
                    Frame::SubmitCompressedKeyed {
                        key,
                        ap_id,
                        age,
                        spectrum,
                        ..
                    } => Frame::SubmitKeyed {
                        key,
                        ap_id,
                        age,
                        spectrum,
                    },
                    other => other,
                }
            }
            Ok(None) => return, // clean close
            Err(ReadError::Io(_)) => return,
            Err(ReadError::Decode(e)) => {
                // Framing is lost; say why, then hang up.
                let _ = proto::write_frame(
                    &mut stream,
                    &Frame::ProtocolError {
                        code: errcode::UNDECODABLE,
                        message: e.to_string(),
                    },
                );
                return;
            }
        };
        let response = match frame {
            Frame::SubmitSpectrum {
                ap_id,
                age,
                spectrum,
            } => {
                // Validate against the *current* epoch's AP set; the
                // guard keeps the check and the health report on the
                // same side of any concurrent reconfiguration.
                let topo = shared.topo.read().expect("topo poisoned");
                let n_aps = topo.config.n_aps();
                if (ap_id as usize) >= n_aps {
                    Frame::ProtocolError {
                        code: errcode::BAD_AP,
                        message: format!("ap {ap_id} out of range (deployment has {n_aps})"),
                    }
                } else {
                    shared
                        .health
                        .lock()
                        .expect("health poisoned")
                        .report_success(ap_id as usize);
                    session.push(SessionObs {
                        ap_id,
                        age,
                        spectrum: Arc::new(spectrum),
                    });
                    Frame::SubmitAck {
                        observations: session.len() as u32,
                    }
                }
            }
            Frame::SubmitKeyed {
                key,
                ap_id,
                age,
                spectrum,
            } => {
                if role == Role::App {
                    role_mismatch("ingestion", "app")
                } else {
                    // One topo read guard around the id check, the
                    // journal record, and the store mutation: the
                    // journal's order is the order the store changed,
                    // and a swap can never interleave.
                    let topo = shared.topo.read().expect("topo poisoned");
                    let n_aps = topo.config.n_aps();
                    if (ap_id as usize) >= n_aps {
                        Frame::ProtocolError {
                            code: errcode::BAD_AP,
                            message: format!("ap {ap_id} out of range (deployment has {n_aps})"),
                        }
                    } else {
                        role = Role::Ingest;
                        if let Some(tap) = &shared.tap {
                            tap.submit(key, ap_id, age, &spectrum);
                        }
                        shared
                            .health
                            .lock()
                            .expect("health poisoned")
                            .report_success(ap_id as usize);
                        let observations =
                            shared
                                .store
                                .submit(key, ap_id as usize, age, Arc::new(spectrum));
                        Frame::SubmitAck {
                            observations: observations as u32,
                        }
                    }
                }
            }
            Frame::LocalizeKey { key, deadline_ms } => {
                if role == Role::Ingest {
                    role_mismatch("query", "ingest")
                } else {
                    role = Role::App;
                    // An unknown (never-submitted or evicted) key fuses an
                    // empty observation set: the normal path answers with
                    // the typed `NoObservations` error.
                    handle_localize(shared, admission, LocalizeSource::Keyed(key), deadline_ms)
                }
            }
            Frame::ReportFailure { ap_id } => {
                let topo = shared.topo.read().expect("topo poisoned");
                let n_aps = topo.config.n_aps();
                if (ap_id as usize) >= n_aps {
                    Frame::ProtocolError {
                        code: errcode::BAD_AP,
                        message: format!("ap {ap_id} out of range (deployment has {n_aps})"),
                    }
                } else {
                    if let Some(tap) = &shared.tap {
                        tap.failure(ap_id);
                    }
                    shared
                        .health
                        .lock()
                        .expect("health poisoned")
                        .report_failure(ap_id as usize);
                    Frame::SubmitAck {
                        observations: session.len() as u32,
                    }
                }
            }
            Frame::ClearSession => {
                session.clear();
                Frame::SubmitAck { observations: 0 }
            }
            Frame::Ping { token } => Frame::Pong { token },
            // Read-only and role-neutral: ops scrape from whatever
            // connection is handy without typing it.
            Frame::MetricsQuery => Frame::MetricsReport {
                text: at_obs::global().snapshot().to_prometheus(),
            },
            Frame::TopologyQuery => {
                let topo = shared.topo.read().expect("topo poisoned");
                Frame::TopologyInfo {
                    epoch: topo.epoch,
                    fingerprint: topo.fingerprint,
                    poses: topo.config.poses.clone(),
                }
            }
            Frame::Reconfigure { op } => handle_reconfigure(shared, op),
            Frame::Localize { deadline_ms } => handle_localize(
                shared,
                admission,
                LocalizeSource::Legacy(session.clone()),
                deadline_ms,
            ),
            // Response-type frames are never valid requests.
            _ => Frame::ProtocolError {
                code: errcode::NOT_A_REQUEST,
                message: "server received a response-type frame".into(),
            },
        };
        if proto::write_frame(&mut stream, &response).is_err() {
            return;
        }
    }
}

/// Snapshots the store's resident spectra for `key` as session
/// observations, in ascending AP order (the order the in-process
/// reference adds them, which bit-exact parity requires).
fn keyed_obs(shared: &Shared, key: ClientKey) -> Vec<SessionObs> {
    shared
        .store
        .snapshot(key)
        .map(|snap| {
            snap.into_iter()
                .map(|o| SessionObs {
                    ap_id: o.ap_id,
                    age: o.age,
                    spectrum: o.spectrum,
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Where a localize request's observations come from: a legacy (v1)
/// connection's private session, or the keyed store (snapshotted *under
/// the topo read guard*, together with the journal record, so the
/// snapshot and the journal agree about which epoch the query saw).
enum LocalizeSource {
    Legacy(Vec<SessionObs>),
    Keyed(ClientKey),
}

fn shed(shared: &Shared) -> Frame {
    shared.stats.shed.fetch_add(1, Ordering::Relaxed);
    at_obs::count!("at_serve_shed_total");
    if shared.draining.load(Ordering::Acquire) {
        Frame::ShuttingDown
    } else {
        Frame::Overloaded {
            retry_after_ms: shared.retry_after_ms,
        }
    }
}

fn handle_localize(
    shared: &Shared,
    admission: &Bounded<Job>,
    source: LocalizeSource,
    deadline_ms: u32,
) -> Frame {
    let _t = at_obs::time_stage!(at_obs::stages::SERVE_REQUEST);
    shared.stats.requests.fetch_add(1, Ordering::Relaxed);
    at_obs::count!("at_serve_requests_total");
    if shared.draining.load(Ordering::Acquire) {
        return Frame::ShuttingDown;
    }
    // A reconfiguration is draining the pipeline: refuse before touching
    // the topo lock so the drain terminates under any offered load (a
    // shed request is retried by the client after the swap).
    if shared.swapping.load(Ordering::Acquire) {
        return shed(shared);
    }
    let deadline =
        (deadline_ms > 0).then(|| Instant::now() + Duration::from_millis(u64::from(deadline_ms)));
    let (reply_tx, reply_rx) = mpsc::sync_channel(1);
    // Admission happens under the topo read guard: the journal record,
    // the store snapshot, and the queue push (with its in-flight credit)
    // are one atomic unit with respect to an epoch swap, so a query
    // journaled before the epoch record also *executed* before it.
    let admitted = {
        let _topo = shared.topo.read().expect("topo poisoned");
        if shared.swapping.load(Ordering::Acquire) {
            // The flag rose between the check above and the guard.
            None
        } else {
            let (obs, query_seq) = match source {
                LocalizeSource::Legacy(obs) => (obs, None),
                LocalizeSource::Keyed(key) => {
                    let seq = shared.tap.as_ref().map(|t| t.query(key, deadline_ms));
                    (keyed_obs(shared, key), seq)
                }
            };
            let job = Job {
                obs,
                deadline,
                enqueued: Instant::now(),
                reply: reply_tx,
            };
            shared.in_flight.fetch_add(1, Ordering::SeqCst);
            match admission.try_push(job) {
                Ok(()) => Some(query_seq),
                Err(_refused) => {
                    shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                    None
                }
            }
        }
    };
    match admitted {
        Some(query_seq) => {
            let reply = match reply_rx.recv() {
                Ok(frame) => frame,
                // The pipeline dropped the job mid-shutdown unanswered.
                Err(_) => Frame::ShuttingDown,
            };
            shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            if let (Some(tap), Some(seq)) = (&shared.tap, query_seq) {
                tap.outcome(seq, &reply);
            }
            reply
        }
        None => shed(shared),
    }
}

/// Applies a topology change to the live server: validate and build the
/// new epoch *outside* all locks (the engine's per-AP grid cache makes
/// unchanged APs a memcpy), shed-and-drain the localize pipeline, then
/// swap — journal record, store remap, health remap, and the topo
/// publish in one exclusive section. In-flight requests finish on the
/// old epoch; requests admitted after see only the new one.
fn handle_reconfigure(shared: &Shared, op: TopologyOp) -> Frame {
    // One administrator at a time; concurrent ops queue here.
    let _admin = shared.reconfig.lock().expect("reconfig poisoned");
    let (new_config, mapping, new_epoch) = {
        let topo = shared.topo.read().expect("topo poisoned");
        match topo.config.apply(&op) {
            Ok((config, mapping)) => (config, mapping, topo.epoch + 1),
            Err(e) => {
                // Refused cleanly: typed error over the wire, epoch
                // untouched, connection stays usable.
                return Frame::ProtocolError {
                    code: errcode::BAD_CONFIG,
                    message: e.to_string(),
                };
            }
        }
    };
    let fingerprint = new_config.fingerprint();
    // The expensive part, outside every lock: serving continues on the
    // old epoch while the new engine assembles from cached grids.
    let engine = Arc::new(LocalizationEngine::for_epoch(
        &new_config.poses,
        new_config.region,
        new_config.bins,
        new_epoch,
    ));
    // Drain: new localizes shed from here on, so in-flight reaches zero.
    shared.swapping.store(true, Ordering::SeqCst);
    while shared.in_flight.load(Ordering::SeqCst) > 0 {
        thread::sleep(Duration::from_micros(50));
    }
    {
        let mut topo = shared.topo.write().expect("topo poisoned");
        if let Some(tap) = &shared.tap {
            tap.epoch_change(new_epoch, fingerprint, &op);
        }
        shared.store.remap(&mapping.old_to_new, mapping.n_new);
        shared
            .health
            .lock()
            .expect("health poisoned")
            .remap(&mapping.old_to_new, mapping.n_new);
        *topo = TopoState {
            epoch: new_epoch,
            config: new_config,
            fingerprint,
            engine,
        };
    }
    shared.swapping.store(false, Ordering::SeqCst);
    shared.stats.reconfigures.fetch_add(1, Ordering::Relaxed);
    at_obs::count!("at_serve_reconfigures_total");
    at_obs::global()
        .gauge(at_obs::names::SERVE_TOPOLOGY_EPOCH, &[])
        .set(new_epoch as f64);
    let topo = shared.topo.read().expect("topo poisoned");
    Frame::TopologyInfo {
        epoch: topo.epoch,
        fingerprint: topo.fingerprint,
        poses: topo.config.poses.clone(),
    }
}

fn expire_deadline(shared: &Shared, job: &Job, now: Instant) -> bool {
    if job.deadline.is_some_and(|d| d <= now) {
        shared.stats.deadline_missed.fetch_add(1, Ordering::Relaxed);
        at_obs::count!("at_serve_deadline_missed_total");
        let _ = job.reply.send(Frame::DeadlineExceeded);
        return true;
    }
    false
}

fn run_batcher(
    admission: &Bounded<Job>,
    exec: &Bounded<Vec<Job>>,
    shared: &Shared,
    mut controller: BatchController,
) {
    let dwell = at_obs::stages::stage_histogram(at_obs::stages::SERVE_QUEUE);
    while let Some(batch) = gather(admission, controller.policy()) {
        // A request that expired while queued must not occupy a batch slot.
        let now = Instant::now();
        for job in &batch {
            dwell.observe(now.saturating_duration_since(job.enqueued).as_secs_f64());
        }
        controller.on_batch();
        let live: Vec<Job> = batch
            .into_iter()
            .filter(|job| !expire_deadline(shared, job, now))
            .collect();
        if live.is_empty() {
            continue;
        }
        if let Err(refused) = exec.push(live) {
            // Only possible mid-shutdown; answer rather than drop.
            for job in refused {
                let _ = job.reply.send(Frame::ShuttingDown);
            }
        }
    }
    // Admission is closed and drained: signal the workers.
    exec.close();
}

fn run_worker(exec: &Bounded<Vec<Job>>, shared: &Shared) {
    // Reused batch after batch; together with the engine's per-thread
    // fusion scratch this makes a warm worker's sweep allocation-free.
    let mut results: Vec<Result<LocationEstimate, at_core::LocalizeError>> = Vec::new();
    while let Some(batch) = exec.pop() {
        let _t = at_obs::time_stage!(
            at_obs::stages::SERVE_BATCH,
            "requests" => batch.len(),
        );
        // Last deadline check before the expensive sweep.
        let now = Instant::now();
        let live: Vec<Job> = batch
            .into_iter()
            .filter(|job| !expire_deadline(shared, job, now))
            .collect();
        if live.is_empty() {
            continue;
        }
        // Pin the epoch for the whole batch: engine and policy from one
        // topo read. A swap cannot run concurrently (it drains in-flight
        // first), so this is always the epoch the batch was admitted
        // under.
        let (engine, policy) = {
            let topo = shared.topo.read().expect("topo poisoned");
            (Arc::clone(&topo.engine), topo.config.health)
        };
        // One health snapshot per batch: every request of a batch is
        // judged under the same deployment state.
        let health = shared.health.lock().expect("health poisoned").clone();
        let fused: Vec<Vec<FusedObservation<'_>>> = live
            .iter()
            .map(|job| {
                job.obs
                    .iter()
                    .map(|o| FusedObservation {
                        pose_idx: o.ap_id as usize,
                        spectrum: &o.spectrum,
                        ap_id: Some(o.ap_id as usize),
                        age: o.age,
                    })
                    .collect()
            })
            .collect();
        let queries: Vec<&[FusedObservation<'_>]> = fused.iter().map(Vec::as_slice).collect();
        // Workers are the parallelism; each sweep runs single-threaded.
        at_core::fuse_batch_into(&engine, &queries, &health, &policy, 1, &mut results);
        drop(queries);
        drop(fused);
        for (job, result) in live.iter().zip(results.drain(..)) {
            let frame = match result {
                Ok(estimate) => {
                    shared.stats.fixes.fetch_add(1, Ordering::Relaxed);
                    at_obs::count!("at_serve_responses_total", "result" => "fix");
                    fix_frame(&policy, &health, &job.obs, estimate)
                }
                Err(error) => {
                    shared.stats.failures.fetch_add(1, Ordering::Relaxed);
                    at_obs::count!("at_serve_responses_total", "result" => "failed");
                    Frame::Failed { error }
                }
            };
            let _ = job.reply.send(frame);
        }
    }
}

/// Builds a [`Frame::Fix`] carrying the health of every AP the session
/// cited, as judged by the snapshot the fusion actually used.
fn fix_frame(
    policy: &HealthPolicy,
    health: &HealthTracker,
    obs: &[SessionObs],
    estimate: LocationEstimate,
) -> Frame {
    let mut ap_ids: Vec<u32> = obs.iter().map(|o| o.ap_id).collect();
    ap_ids.sort_unstable();
    ap_ids.dedup();
    let reports = ap_ids
        .into_iter()
        .map(|ap| ApHealthReport {
            ap_id: ap,
            status: health.status(ap as usize, policy),
            consecutive_failures: health.consecutive_failures(ap as usize),
        })
        .collect();
    Frame::Fix {
        x: estimate.position.x,
        y: estimate.position.y,
        likelihood: estimate.likelihood,
        health: reports,
    }
}
