//! The keyed session store: where AP ingestion meets application queries.
//!
//! The paper's Figure 1 deployment runs six AP processes streaming
//! processed spectra into one aggregation server while applications query
//! positions independently. This module is the server-side join point:
//! AP connections [`SessionStore::submit`] spectra tagged with a
//! [`ClientKey`], application connections [`SessionStore::snapshot`] a
//! key's accumulated spectra for fusion. Three properties the ROADMAP's
//! "millions of mostly-idle clients" goal demands:
//!
//! - **Sharded**: keys hash onto independent mutex-guarded shards, so six
//!   AP writers and many app readers do not serialize on one lock.
//! - **Atomic replacement**: each session holds one slot per deployment
//!   AP; a submit swaps the slot's `Arc<AoaSpectrum>` under the shard
//!   lock and a snapshot clones the `Arc`s under the same lock — a
//!   localize racing a mid-flight submit for the same key sees the old
//!   spectrum or the new one, never a torn mix
//!   (`crates/serve/tests/store_interleave.rs` drives the interleaving).
//! - **Bounded residency**: sessions idle past
//!   [`SessionPolicy::idle_timeout`] are reaped, and a hard cap on
//!   resident spectra evicts the least-recently-touched session when an
//!   insert would exceed it — so the store's memory is bounded by policy,
//!   not by offered load. Both paths are observable via the
//!   `at_serve_sessions_*` gauges/counters ([`at_obs::names`]).
//!
//! **Staleness**: every slot remembers the submission age and the store's
//! monotonic refresh tick at submit time; a snapshot reports
//! `age + (tick_now - tick_then)`, so an AP that goes silent watches its
//! spectra age out through the *existing* `HealthPolicy::max_spectrum_age`
//! path and a key served only by silent APs degrades into the same typed
//! `QuorumNotMet` the in-process server returns.

use crate::proto::ClientKey;
use at_core::AoaSpectrum;
use at_obs::metrics::{Counter, Gauge};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Residency and eviction policy — canonically defined in [`at_config`]
/// (it is part of the system fingerprint) and re-exported here for the
/// store's callers.
pub use at_config::SessionPolicy;

/// One AP's spectrum inside a session.
struct Slot {
    /// Age in refresh intervals, as submitted.
    age0: u64,
    /// The store's refresh tick when the spectrum was submitted.
    tick0: u64,
    /// The spectrum. Swapped whole under the shard lock — never mutated
    /// in place — so concurrent snapshots are torn-read free.
    spectrum: Arc<AoaSpectrum>,
}

/// One tracked client's accumulated state.
struct Session {
    /// Per-AP slots, indexed by deployment AP id.
    slots: Vec<Option<Slot>>,
    /// Spectra held (count of `Some` slots).
    spectra: usize,
    /// Monotonic touch stamp; the global eviction order is ascending
    /// `seq` (least-recently-touched first), wall-clock free so fixtures
    /// stay stable across refactors.
    seq: u64,
    /// Wall-clock of the last touch, for idle-timeout reaping.
    last_touch: Instant,
}

#[derive(Default)]
struct Shard {
    sessions: HashMap<ClientKey, Session>,
}

/// Resident totals, guarded by one mutex so the cap is enforced exactly:
/// the gauge never reads above the cap, even transiently, because every
/// mutation happens inside this lock (lock order: counts before shard).
#[derive(Default)]
struct Counts {
    sessions: usize,
    spectra: usize,
}

/// One observation as returned by [`SessionStore::snapshot`].
#[derive(Clone)]
pub struct KeyedObs {
    /// Deployment AP the spectrum came from.
    pub ap_id: u32,
    /// Effective age in refresh intervals: submitted age plus intervals
    /// elapsed since submission.
    pub age: u64,
    /// The spectrum (shared; replaced, never mutated, by later submits).
    pub spectrum: Arc<AoaSpectrum>,
}

/// Counters a [`SessionStore`] accumulates over its lifetime, surfaced in
/// the server's `StatsSnapshot`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Keyed sessions currently resident.
    pub resident_sessions: u64,
    /// Spectra currently resident (the capped quantity).
    pub resident_spectra: u64,
    /// Sessions created since the store was built.
    pub created: u64,
    /// Sessions evicted by the idle-timeout reaper.
    pub evicted_idle: u64,
    /// Sessions evicted by cap pressure.
    pub evicted_cap: u64,
    /// Sessions evicted because a topology change left them empty (every
    /// spectrum they held came from departed/moved APs).
    pub evicted_topology: u64,
}

/// What a topology remap did to the store's resident state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RemapStats {
    /// Spectra dropped because their AP departed or moved.
    pub spectra_dropped: u64,
    /// Sessions evicted because the drop left them empty.
    pub sessions_evicted: u64,
}

/// The sharded keyed session store. See the module docs for semantics.
pub struct SessionStore {
    shards: Vec<Mutex<Shard>>,
    counts: Mutex<Counts>,
    /// Per-session slot width — the *current epoch's* AP count. Written
    /// only by [`SessionStore::remap`] (under the counts lock, with every
    /// session rewritten to the new width in the same critical section),
    /// read by submits.
    n_aps: AtomicUsize,
    policy: SessionPolicy,
    seq: AtomicU64,
    tick: AtomicU64,
    created: AtomicU64,
    evicted_idle: AtomicU64,
    evicted_cap: AtomicU64,
    evicted_topology: AtomicU64,
    g_sessions: Arc<Gauge>,
    g_spectra: Arc<Gauge>,
    c_created: Arc<Counter>,
    c_evicted_idle: Arc<Counter>,
    c_evicted_cap: Arc<Counter>,
    c_evicted_topology: Arc<Counter>,
    c_submits: Arc<Counter>,
}

impl SessionStore {
    /// An empty store for a deployment of `n_aps` APs under `policy`.
    ///
    /// # Panics
    /// Panics on an invalid policy, zero APs, or a cap smaller than one
    /// full session (`n_aps` spectra) — the cap must never force a
    /// session to evict itself.
    pub fn new(n_aps: usize, policy: SessionPolicy) -> Self {
        policy.validate();
        assert!(n_aps >= 1, "a store needs at least one AP slot");
        assert!(
            policy.max_resident_spectra >= n_aps,
            "the resident-spectra cap must fit one full session"
        );
        let reg = at_obs::global();
        Self {
            shards: (0..policy.shards).map(|_| Mutex::default()).collect(),
            counts: Mutex::default(),
            n_aps: AtomicUsize::new(n_aps),
            policy,
            seq: AtomicU64::new(0),
            tick: AtomicU64::new(0),
            created: AtomicU64::new(0),
            evicted_idle: AtomicU64::new(0),
            evicted_cap: AtomicU64::new(0),
            evicted_topology: AtomicU64::new(0),
            g_sessions: reg.gauge(at_obs::names::SERVE_SESSIONS_RESIDENT, &[]),
            g_spectra: reg.gauge(at_obs::names::SERVE_SESSIONS_SPECTRA_RESIDENT, &[]),
            c_created: reg.counter(at_obs::names::SERVE_SESSIONS_CREATED_TOTAL, &[]),
            c_evicted_idle: reg.counter(
                at_obs::names::SERVE_SESSIONS_EVICTED_TOTAL,
                &[("reason", "idle")],
            ),
            c_evicted_cap: reg.counter(
                at_obs::names::SERVE_SESSIONS_EVICTED_TOTAL,
                &[("reason", "cap")],
            ),
            c_evicted_topology: reg.counter(
                at_obs::names::SERVE_SESSIONS_EVICTED_TOTAL,
                &[("reason", "topology")],
            ),
            c_submits: reg.counter(at_obs::names::SERVE_SESSIONS_SUBMITS_TOTAL, &[]),
        }
    }

    /// The policy the store was built with.
    pub fn policy(&self) -> &SessionPolicy {
        &self.policy
    }

    /// The current epoch's AP count (per-session slot width).
    pub fn n_aps(&self) -> usize {
        self.n_aps.load(Ordering::Acquire)
    }

    fn shard_of(&self, key: ClientKey) -> usize {
        // Fibonacci hashing: adjacent keys land on different shards.
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.shards.len()
    }

    fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Stores AP `ap_id`'s spectrum for `key` (replacing that AP's
    /// previous one atomically) and returns the key's resident spectrum
    /// count. Enforces the resident cap before returning: the
    /// least-recently-touched *other* sessions are evicted until the
    /// insert fits.
    ///
    /// # Panics
    /// Panics if `ap_id` is out of range (the server validates first and
    /// answers with a protocol error instead).
    pub fn submit(
        &self,
        key: ClientKey,
        ap_id: usize,
        age: u64,
        spectrum: Arc<AoaSpectrum>,
    ) -> usize {
        let now = Instant::now();
        let tick = self.tick.load(Ordering::Acquire);
        let seq = self.next_seq();
        let mut counts = self.counts.lock().expect("counts poisoned");
        // Validated under the counts lock so the check and the insert see
        // the same epoch (remaps rewrite the width inside this lock).
        let n_aps = self.n_aps();
        assert!(ap_id < n_aps, "ap_id out of range");
        let (added, created, observations) = {
            let mut shard = self.shards[self.shard_of(key)]
                .lock()
                .expect("shard poisoned");
            let (session, created) = match shard.sessions.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => (e.into_mut(), false),
                std::collections::hash_map::Entry::Vacant(e) => (
                    e.insert(Session {
                        slots: (0..n_aps).map(|_| None).collect(),
                        spectra: 0,
                        seq,
                        last_touch: now,
                    }),
                    true,
                ),
            };
            let added = session.slots[ap_id].is_none();
            session.slots[ap_id] = Some(Slot {
                age0: age,
                tick0: tick,
                spectrum,
            });
            if added {
                session.spectra += 1;
            }
            session.seq = seq;
            session.last_touch = now;
            (added, created, session.spectra)
        };
        if created {
            counts.sessions += 1;
            self.created.fetch_add(1, Ordering::Relaxed);
            self.c_created.inc();
        }
        if added {
            counts.spectra += 1;
        }
        self.c_submits.inc();
        // Cap enforcement, still under the counts lock: evict
        // least-recently-touched sessions (never the one just written)
        // until the store fits.
        while counts.spectra > self.policy.max_resident_spectra {
            let Some((victim, shard_idx)) = self.oldest_except(key) else {
                break; // only the inserting session remains; cap >= n_aps keeps this in bounds
            };
            let removed = self.shards[shard_idx]
                .lock()
                .expect("shard poisoned")
                .sessions
                .remove(&victim)
                .map_or(0, |s| s.spectra);
            if removed > 0 || victim != key {
                counts.sessions = counts.sessions.saturating_sub(1);
                counts.spectra = counts.spectra.saturating_sub(removed);
                self.evicted_cap.fetch_add(1, Ordering::Relaxed);
                self.c_evicted_cap.inc();
            }
        }
        self.publish(&counts);
        observations
    }

    /// The least-recently-touched session other than `except`, as
    /// `(key, shard index)`. Called under the counts lock.
    fn oldest_except(&self, except: ClientKey) -> Option<(ClientKey, usize)> {
        let mut best: Option<(u64, ClientKey, usize)> = None;
        for (i, shard) in self.shards.iter().enumerate() {
            let shard = shard.lock().expect("shard poisoned");
            for (&key, session) in &shard.sessions {
                if key == except {
                    continue;
                }
                if best.is_none_or(|(seq, _, _)| session.seq < seq) {
                    best = Some((session.seq, key, i));
                }
            }
        }
        best.map(|(_, key, shard)| (key, shard))
    }

    /// Atomically snapshots the spectra resident for `key`, ordered by AP
    /// id, with staleness-aged `age`s; `None` when the key holds no
    /// session (never submitted, or evicted). Counts as a touch for
    /// idle/eviction purposes.
    pub fn snapshot(&self, key: ClientKey) -> Option<Vec<KeyedObs>> {
        let tick = self.tick.load(Ordering::Acquire);
        let seq = self.next_seq();
        let mut shard = self.shards[self.shard_of(key)]
            .lock()
            .expect("shard poisoned");
        let session = shard.sessions.get_mut(&key)?;
        session.seq = seq;
        session.last_touch = Instant::now();
        Some(
            session
                .slots
                .iter()
                .enumerate()
                .filter_map(|(ap, slot)| {
                    slot.as_ref().map(|s| KeyedObs {
                        ap_id: ap as u32,
                        age: s.age0 + (tick - s.tick0),
                        spectrum: Arc::clone(&s.spectrum),
                    })
                })
                .collect(),
        )
    }

    /// Drops `key`'s session entirely. Returns whether one existed.
    pub fn clear(&self, key: ClientKey) -> bool {
        let mut counts = self.counts.lock().expect("counts poisoned");
        let removed = self.shards[self.shard_of(key)]
            .lock()
            .expect("shard poisoned")
            .sessions
            .remove(&key);
        let Some(session) = removed else { return false };
        counts.sessions = counts.sessions.saturating_sub(1);
        counts.spectra = counts.spectra.saturating_sub(session.spectra);
        self.publish(&counts);
        true
    }

    /// Advances the staleness clock by one refresh interval: every
    /// resident spectrum is now one interval older.
    pub fn advance_tick(&self) {
        self.tick.fetch_add(1, Ordering::Release);
    }

    /// Current staleness tick (intervals since the store was built).
    pub fn tick(&self) -> u64 {
        self.tick.load(Ordering::Acquire)
    }

    /// Evicts every session idle past the policy's timeout, as of `now`.
    /// Returns the evicted keys (empty when nothing was idle) — the
    /// capture journal records them so a replay can apply the same
    /// evictions at the same point in the event order.
    pub fn reap_idle(&self, now: Instant) -> Vec<ClientKey> {
        let mut counts = self.counts.lock().expect("counts poisoned");
        let mut evicted: Vec<ClientKey> = Vec::new();
        for shard in &self.shards {
            let mut shard = shard.lock().expect("shard poisoned");
            let expired: Vec<ClientKey> = shard
                .sessions
                .iter()
                .filter(|(_, s)| {
                    now.saturating_duration_since(s.last_touch) > self.policy.idle_timeout
                })
                .map(|(&k, _)| k)
                .collect();
            for key in expired {
                if let Some(session) = shard.sessions.remove(&key) {
                    counts.sessions = counts.sessions.saturating_sub(1);
                    counts.spectra = counts.spectra.saturating_sub(session.spectra);
                    evicted.push(key);
                }
            }
        }
        if !evicted.is_empty() {
            self.evicted_idle
                .fetch_add(evicted.len() as u64, Ordering::Relaxed);
            self.c_evicted_idle.add(evicted.len() as u64);
            self.publish(&counts);
        }
        evicted
    }

    /// Carries the store across a topology epoch. `old_to_new[i]` is the
    /// new id inheriting old AP `i`'s spectra (`None` drops them — the AP
    /// departed or moved); `n_new` is the new epoch's AP count. Sessions
    /// left with zero spectra are evicted (`reason="topology"` on the
    /// eviction counter): a key served only by a departed AP degrades to
    /// the same `NoObservations`/`QuorumNotMet` conditions an evicted or
    /// silent session already produces — a typed refusal, never a panic.
    ///
    /// Runs under the counts lock and takes every shard lock in turn, so
    /// the caller-observable switch from old width to new is atomic with
    /// respect to submits (which validate `ap_id` under the same counts
    /// lock).
    pub fn remap(&self, old_to_new: &[Option<u32>], n_new: usize) -> RemapStats {
        assert!(n_new >= 1, "an epoch needs at least one AP slot");
        let mut counts = self.counts.lock().expect("counts poisoned");
        let mut stats = RemapStats::default();
        for shard in &self.shards {
            let mut shard = shard.lock().expect("shard poisoned");
            shard.sessions.retain(|_, session| {
                let mut slots: Vec<Option<Slot>> = (0..n_new).map(|_| None).collect();
                let mut kept = 0usize;
                for (old, slot) in session.slots.drain(..).enumerate() {
                    let Some(slot) = slot else { continue };
                    match old_to_new.get(old).copied().flatten() {
                        Some(new) if (new as usize) < n_new => {
                            slots[new as usize] = Some(slot);
                            kept += 1;
                        }
                        _ => stats.spectra_dropped += 1,
                    }
                }
                session.slots = slots;
                session.spectra = kept;
                if kept == 0 {
                    stats.sessions_evicted += 1;
                }
                kept > 0
            });
        }
        counts.spectra = counts
            .spectra
            .saturating_sub(stats.spectra_dropped as usize);
        counts.sessions = counts
            .sessions
            .saturating_sub(stats.sessions_evicted as usize);
        self.n_aps.store(n_new, Ordering::Release);
        if stats.sessions_evicted > 0 {
            self.evicted_topology
                .fetch_add(stats.sessions_evicted, Ordering::Relaxed);
            self.c_evicted_topology.add(stats.sessions_evicted);
        }
        self.publish(&counts);
        stats
    }

    fn publish(&self, counts: &MutexGuard<'_, Counts>) {
        self.g_sessions.set(counts.sessions as f64);
        self.g_spectra.set(counts.spectra as f64);
    }

    /// Lifetime counters and current residency.
    pub fn stats(&self) -> StoreStats {
        let counts = self.counts.lock().expect("counts poisoned");
        StoreStats {
            resident_sessions: counts.sessions as u64,
            resident_spectra: counts.spectra as u64,
            created: self.created.load(Ordering::Relaxed),
            evicted_idle: self.evicted_idle.load(Ordering::Relaxed),
            evicted_cap: self.evicted_cap.load(Ordering::Relaxed),
            evicted_topology: self.evicted_topology.load(Ordering::Relaxed),
        }
    }

    /// Keys in eviction order (least-recently-touched first) — the order
    /// cap pressure would remove them. Wall-clock free (driven by the
    /// monotonic touch stamps), so the order is stable across refactors
    /// and machines; the golden-fixture test pins it.
    pub fn eviction_order(&self) -> Vec<ClientKey> {
        let mut all: Vec<(u64, ClientKey)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("shard poisoned");
            all.extend(shard.sessions.iter().map(|(&k, s)| (s.seq, k)));
        }
        all.sort_unstable();
        all.into_iter().map(|(_, k)| k).collect()
    }

    /// A deterministic text rendering of the store's resident state:
    /// sessions in eviction order, slots in AP order, spectra summarized
    /// bit-exactly (`to_bits` of the first bin and of the bin sum). No
    /// wall-clock values — only logical stamps — so the same submission
    /// sequence always renders the same bytes (the golden fixture under
    /// `tests/fixtures/` holds one).
    pub fn golden_snapshot(&self) -> String {
        let mut out = String::new();
        let order = self.eviction_order();
        let counts = self.counts.lock().expect("counts poisoned");
        let _ = writeln!(
            out,
            "session_store n_aps={} tick={} sessions={} spectra={}",
            self.n_aps(),
            self.tick(),
            counts.sessions,
            counts.spectra
        );
        drop(counts);
        for key in &order {
            let shard = self.shards[self.shard_of(*key)]
                .lock()
                .expect("shard poisoned");
            let Some(session) = shard.sessions.get(key) else {
                continue;
            };
            let _ = writeln!(
                out,
                "session key={} seq={} spectra={}",
                key, session.seq, session.spectra
            );
            for (ap, slot) in session.slots.iter().enumerate() {
                let Some(slot) = slot else { continue };
                let values = slot.spectrum.values();
                let sum: f64 = values.iter().copied().sum();
                let _ = writeln!(
                    out,
                    "  slot ap={} age0={} tick0={} bins={} first={:#018x} sum={:#018x}",
                    ap,
                    slot.age0,
                    slot.tick0,
                    values.len(),
                    values[0].to_bits(),
                    sum.to_bits()
                );
            }
        }
        let _ = writeln!(
            out,
            "eviction_order {}",
            order
                .iter()
                .map(|k| k.to_string())
                .collect::<Vec<_>>()
                .join(",")
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn spectrum(level: f64) -> Arc<AoaSpectrum> {
        Arc::new(AoaSpectrum::from_fn(16, |t| t.sin().abs() + level))
    }

    fn policy(cap: usize) -> SessionPolicy {
        SessionPolicy {
            idle_timeout: Duration::from_secs(60),
            max_resident_spectra: cap,
            reap_interval: Duration::from_millis(10),
            refresh_interval: Duration::from_millis(10),
            shards: 4,
        }
    }

    #[test]
    fn submit_and_snapshot_roundtrip_in_ap_order() {
        let store = SessionStore::new(3, policy(100));
        assert_eq!(store.submit(9, 2, 0, spectrum(0.1)), 1);
        assert_eq!(store.submit(9, 0, 1, spectrum(0.2)), 2);
        // Replacing a slot does not grow the session.
        assert_eq!(store.submit(9, 2, 0, spectrum(0.3)), 2);
        let snap = store.snapshot(9).expect("resident");
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].ap_id, 0);
        assert_eq!(snap[1].ap_id, 2);
        assert_eq!(snap[0].age, 1);
        assert!(store.snapshot(10).is_none());
        let stats = store.stats();
        assert_eq!(stats.resident_sessions, 1);
        assert_eq!(stats.resident_spectra, 2);
        assert_eq!(stats.created, 1);
    }

    #[test]
    fn staleness_ages_with_the_tick() {
        let store = SessionStore::new(2, policy(100));
        store.submit(1, 0, 1, spectrum(0.5));
        store.advance_tick();
        store.advance_tick();
        // Submitted at tick 2: ages from its own submission tick.
        store.submit(1, 1, 0, spectrum(0.5));
        store.advance_tick();
        let snap = store.snapshot(1).expect("resident");
        assert_eq!(snap[0].age, 1 + 3); // age0 1, submitted at tick 0, now 3
        assert_eq!(snap[1].age, 1); // age0 0, submitted at tick 2, now 3
    }

    #[test]
    fn cap_evicts_least_recently_touched_first() {
        let store = SessionStore::new(2, policy(4));
        store.submit(1, 0, 0, spectrum(0.1));
        store.submit(1, 1, 0, spectrum(0.1));
        store.submit(2, 0, 0, spectrum(0.2));
        store.submit(2, 1, 0, spectrum(0.2));
        // Touch 1 so 2 becomes the eviction candidate.
        store.snapshot(1).expect("resident");
        assert_eq!(store.eviction_order(), vec![2, 1]);
        // A third session over the cap displaces 2, not 1.
        store.submit(3, 0, 0, spectrum(0.3));
        assert!(store.snapshot(2).is_none(), "oldest session must go");
        assert!(store.snapshot(1).is_some());
        assert!(store.snapshot(3).is_some());
        let stats = store.stats();
        assert_eq!(stats.evicted_cap, 1);
        assert!(stats.resident_spectra <= 4);
    }

    #[test]
    fn cap_never_evicts_the_inserting_session() {
        let store = SessionStore::new(2, policy(2));
        store.submit(7, 0, 0, spectrum(0.1));
        store.submit(7, 1, 0, spectrum(0.1));
        // Replacements at the cap keep the session intact.
        store.submit(7, 0, 0, spectrum(0.4));
        assert_eq!(store.snapshot(7).expect("resident").len(), 2);
        assert_eq!(store.stats().evicted_cap, 0);
    }

    #[test]
    fn reap_evicts_only_idle_sessions() {
        let p = SessionPolicy {
            idle_timeout: Duration::from_millis(20),
            ..policy(100)
        };
        let store = SessionStore::new(1, p);
        store.submit(1, 0, 0, spectrum(0.1));
        std::thread::sleep(Duration::from_millis(40));
        store.submit(2, 0, 0, spectrum(0.2));
        assert_eq!(store.reap_idle(Instant::now()), vec![1]);
        assert!(store.snapshot(1).is_none());
        assert!(store.snapshot(2).is_some());
        assert_eq!(store.stats().evicted_idle, 1);
    }

    #[test]
    fn clear_removes_and_recounts() {
        let store = SessionStore::new(2, policy(100));
        store.submit(5, 0, 0, spectrum(0.1));
        store.submit(5, 1, 0, spectrum(0.1));
        assert!(store.clear(5));
        assert!(!store.clear(5));
        assert_eq!(store.stats().resident_spectra, 0);
        assert_eq!(store.stats().resident_sessions, 0);
    }

    #[test]
    #[should_panic(expected = "fit one full session")]
    fn cap_below_one_session_is_rejected() {
        SessionStore::new(6, policy(3));
    }

    #[test]
    fn remap_moves_drops_and_evicts() {
        let store = SessionStore::new(3, policy(100));
        // Session 1 spans APs 0 and 2; session 2 lives only on AP 1.
        store.submit(1, 0, 0, spectrum(0.1));
        store.submit(1, 2, 0, spectrum(0.2));
        store.submit(2, 1, 0, spectrum(0.3));
        let before = store.snapshot(1).expect("resident");
        // Remove AP 1: ids 0 and 2 survive as 0 and 1.
        let stats = store.remap(&[Some(0), None, Some(1)], 2);
        assert_eq!(stats.spectra_dropped, 1);
        assert_eq!(stats.sessions_evicted, 1);
        assert_eq!(store.n_aps(), 2);
        assert!(store.snapshot(2).is_none(), "AP-1-only session evicted");
        let after = store.snapshot(1).expect("survives");
        assert_eq!(after.len(), 2);
        assert_eq!(after[0].ap_id, 0);
        assert_eq!(after[1].ap_id, 1);
        // Spectra carried bit-exactly under the new ids.
        assert!(Arc::ptr_eq(&before[0].spectrum, &after[0].spectrum));
        assert!(Arc::ptr_eq(&before[1].spectrum, &after[1].spectrum));
        let s = store.stats();
        assert_eq!(s.resident_sessions, 1);
        assert_eq!(s.resident_spectra, 2);
        assert_eq!(s.evicted_topology, 1);
        // A joiner widens the store; old spectra keep their ids.
        store.remap(&[Some(0), Some(1)], 3);
        assert_eq!(store.n_aps(), 3);
        store.submit(1, 2, 0, spectrum(0.4));
        assert_eq!(store.snapshot(1).expect("resident").len(), 3);
    }

    #[test]
    fn remap_identity_is_a_noop() {
        let store = SessionStore::new(2, policy(100));
        store.submit(7, 0, 0, spectrum(0.5));
        store.submit(7, 1, 0, spectrum(0.6));
        let before = store.golden_snapshot();
        let stats = store.remap(&[Some(0), Some(1)], 2);
        assert_eq!(stats.spectra_dropped, 0);
        assert_eq!(stats.sessions_evicted, 0);
        assert_eq!(store.golden_snapshot(), before);
    }
}
