//! Property tests for the v3 spectrum codec: the decompressor is total
//! (arbitrary bytes yield a typed error or a valid spectrum, never a
//! panic), lossless mode is bit-exact, quantized mode honours its
//! published error bound across the whole dynamic range, and compressed
//! frames are version-gated exactly like the other v2+/v3 frame types.

use at_core::AoaSpectrum;
use at_serve::codec::{self, CompressedMode, DYNAMIC_RANGE_NATS, MAX_RELATIVE_ERROR};
use at_serve::proto::{decode, DecodeError, Frame, HEADER_LEN, MAGIC, MIN_VERSION};
use proptest::prelude::*;

/// A deterministic seed-scrambled spectrum spanning `10^-span … 1` around
/// a unit peak (the peak is pinned so `vmax` is exercised every case).
fn scrambled_spectrum(bins: usize, seed: u64, span: f64) -> AoaSpectrum {
    let mut state = seed | 1;
    let values: Vec<f64> = (0..bins)
        .map(|i| {
            if i == bins / 2 {
                return 1.0;
            }
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            10f64.powf(-span * u)
        })
        .collect();
    AoaSpectrum::from_values(values)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes into the blob decompressor never panic: they
    /// yield a typed `CodecError` or a spectrum satisfying the
    /// `AoaSpectrum` invariants (≥8 bins, finite, non-negative).
    #[test]
    fn decompressor_is_total_on_random_bytes(
        blob in proptest::collection::vec((0u32..256).prop_map(|v| v as u8), 0..160),
    ) {
        if let Ok((_, spectrum)) = codec::decompress(&blob) {
            prop_assert!(spectrum.bins() >= 8);
            prop_assert!(spectrum.values().iter().all(|v| v.is_finite() && *v >= 0.0));
        }
    }

    /// Blobs that start like a real compressed spectrum but carry random
    /// tails exercise the varint/run-length parsers without panicking.
    #[test]
    fn decompressor_is_total_on_blob_shaped_bytes(
        mode in 1u8..3,
        bins in 0u32..2048,
        tail in proptest::collection::vec((0u32..256).prop_map(|v| v as u8), 0..128),
    ) {
        let mut blob = vec![mode];
        blob.extend_from_slice(&bins.to_le_bytes());
        blob.extend_from_slice(&tail);
        if let Ok((_, spectrum)) = codec::decompress(&blob) {
            prop_assert_eq!(spectrum.bins(), bins as usize);
            prop_assert!(spectrum.values().iter().all(|v| v.is_finite() && *v >= 0.0));
        }
    }

    /// No truncated prefix of a valid blob decodes as complete — the
    /// decompressor insists on consuming exactly the whole blob.
    #[test]
    fn truncated_blobs_never_decode(
        seed in 0u64..u64::MAX,
        mode_pick in 0u8..2,
        cut_frac in 0.0f64..1.0,
    ) {
        let mode = if mode_pick == 0 { CompressedMode::Quantized } else { CompressedMode::Lossless };
        let blob = codec::compress(&scrambled_spectrum(64, seed, 6.0), mode);
        let cut = ((blob.len() as f64) * cut_frac) as usize;
        prop_assert!(cut < blob.len());
        prop_assert!(codec::decompress(&blob[..cut]).is_err());
    }

    /// Lossless mode is bit-exact for arbitrary finite non-negative
    /// spectra — every f64, including subnormals-of-the-workload like
    /// tiny floor values, survives the XOR-delta trip untouched.
    #[test]
    fn lossless_roundtrip_is_bit_exact(
        bins_step in 0usize..4,
        seed in 0u64..u64::MAX,
        span in 0.0f64..14.0,
    ) {
        let bins = [8, 64, 360, 720][bins_step];
        let spectrum = scrambled_spectrum(bins, seed, span);
        let blob = codec::compress(&spectrum, CompressedMode::Lossless);
        let (mode, decoded) = codec::decompress(&blob).expect("own blob");
        prop_assert_eq!(mode, CompressedMode::Lossless);
        prop_assert_eq!(decoded.bins(), spectrum.bins());
        for (a, b) in decoded.values().iter().zip(spectrum.values()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Quantized mode honours its published bound across the dynamic
    /// range: values within `10^-12` of the peak reconstruct within
    /// `MAX_RELATIVE_ERROR` relative; values below that floor clamp to
    /// the below-floor sentinel and reconstruct to at most `vmax·10^-12`
    /// absolute. Scale invariance comes free (everything is relative to
    /// the peak), so `scale` sweeps twelve decades.
    #[test]
    fn quantized_error_bound_holds(
        bins_step in 0usize..3,
        seed in 0u64..u64::MAX,
        span in 0.0f64..14.0,
        scale_exp in -6i32..7,
    ) {
        let bins = [8, 64, 360][bins_step];
        let base = scrambled_spectrum(bins, seed, span);
        let scale = 10f64.powi(scale_exp);
        let spectrum = AoaSpectrum::from_values(
            base.values().iter().map(|v| v * scale).collect(),
        );
        let vmax = spectrum.max_value();
        let floor = vmax * (-DYNAMIC_RANGE_NATS).exp();

        let blob = codec::compress(&spectrum, CompressedMode::Quantized);
        let (mode, decoded) = codec::decompress(&blob).expect("own blob");
        prop_assert_eq!(mode, CompressedMode::Quantized);
        for (got, want) in decoded.values().iter().zip(spectrum.values()) {
            if *want > floor {
                let rel = (got - want).abs() / want;
                prop_assert!(
                    rel <= MAX_RELATIVE_ERROR,
                    "relative error {} beyond bound for value {}", rel, want
                );
            } else {
                prop_assert!(got.abs() <= floor, "below-floor value must clamp");
            }
        }

        // Idempotence: the decoded spectrum is on the quantizer's grid,
        // so re-compressing it reproduces the same blob byte-for-byte.
        prop_assert_eq!(codec::compress(&decoded, CompressedMode::Quantized), blob);
    }

    /// Compressed frames under pre-v3 headers fail with the typed
    /// `VersionGated` error — never misparsed, never accepted.
    #[test]
    fn compressed_frames_under_old_versions_fail_typed(
        key in 0u64..u64::MAX,
        ap_id in 0u32..64,
        age in 0u64..100,
        seed in 0u64..u64::MAX,
        old_version_pick in 0u8..2,
        keyed_pick in 0u8..2,
    ) {
        let spectrum = scrambled_spectrum(64, seed, 6.0);
        let frame = if keyed_pick == 1 {
            Frame::SubmitCompressedKeyed {
                key,
                ap_id,
                age,
                mode: CompressedMode::Quantized,
                spectrum,
            }
        } else {
            Frame::SubmitCompressed {
                ap_id,
                age,
                mode: CompressedMode::Lossless,
                spectrum,
            }
        };
        let mut bytes = frame.encode();
        prop_assert_eq!(bytes[2], 3, "compressed frames declare v3 on the wire");
        let old = MIN_VERSION + old_version_pick; // v1 or v2
        bytes[2] = old;
        match decode(&bytes) {
            Err(DecodeError::VersionGated { got, need, .. }) => {
                prop_assert_eq!(got, old);
                prop_assert_eq!(need, 3);
            }
            other => prop_assert!(false, "wanted VersionGated, got {:?}", other),
        }
    }

    /// A compressed frame whose payload bytes are scrambled never panics
    /// the frame decoder: it decodes (rarely — the flip may be benign) or
    /// fails with a typed error.
    #[test]
    fn corrupted_compressed_frames_fail_cleanly(
        seed in 0u64..u64::MAX,
        flip_frac in 0.0f64..1.0,
        flip_bit in 0u8..8,
    ) {
        let frame = Frame::SubmitCompressed {
            ap_id: 3,
            age: 1,
            mode: CompressedMode::Quantized,
            spectrum: scrambled_spectrum(64, seed, 6.0),
        };
        let mut bytes = frame.encode();
        let at = HEADER_LEN + (((bytes.len() - HEADER_LEN) as f64 * flip_frac) as usize)
            .min(bytes.len() - HEADER_LEN - 1);
        bytes[at] ^= 1 << flip_bit;
        prop_assert_eq!(&bytes[..2], &MAGIC[..]);
        let _ = decode(&bytes);
    }
}
