//! End-to-end tests of the protocol-v3 compressed uplink: lossless replay
//! is bit-exact through the keyed store, quantized ingestion stays inside
//! the 1 mm fix-displacement budget while compressing ≥8×, the server's
//! uplink accounting sees what actually crossed the wire, and a
//! compressed-policy `ApClient` falls back to raw against a server that
//! predates v3.

use at_channel::geometry::{pt, Point};
use at_core::health::HealthPolicy;
use at_core::synthesis::{ApPose, SearchRegion};
use at_core::{AoaSpectrum, ArrayTrackServer};
use at_serve::codec;
use at_serve::proto::{self, Frame, HEADER_LEN};
use at_serve::server::errcode;
use at_serve::{
    spawn, ApClient, AppClient, ClientConfig, CompressedMode, Encoding, ServeConfig, ServiceConfig,
};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::thread;

const BINS: usize = 720;
const KEY: u64 = 0xC0DEC;

fn poses() -> Vec<ApPose> {
    vec![
        ApPose {
            center: pt(0.0, 0.0),
            axis_angle: 0.3,
        },
        ApPose {
            center: pt(20.0, 0.0),
            axis_angle: 2.0,
        },
        ApPose {
            center: pt(20.0, 10.0),
            axis_angle: -2.2,
        },
        ApPose {
            center: pt(0.0, 10.0),
            axis_angle: -0.4,
        },
    ]
}

fn region() -> SearchRegion {
    SearchRegion::new(pt(0.0, 0.0), pt(20.0, 10.0))
}

fn service() -> ServiceConfig {
    ServiceConfig {
        poses: poses(),
        region: region(),
        bins: BINS,
        policy: HealthPolicy::default(),
    }
}

/// The loadgen lobe shape: a narrow Gaussian over a 1 % floor, the
/// workload the ≥8× compression bar is defined against.
fn lobe_spectrum(ap: usize, target: Point) -> AoaSpectrum {
    let bearing = poses()[ap].bearing_to(target);
    AoaSpectrum::from_fn(BINS, |t| {
        let d = at_channel::geometry::angle_diff(t, bearing);
        (-(d / 0.22).powi(2)).exp() + 0.01
    })
}

#[test]
fn lossless_uplink_is_bit_exact_with_raw_ingestion() {
    let target = pt(6.5, 3.5);
    let server = spawn(service(), ServeConfig::default(), "127.0.0.1:0").expect("spawn");

    let mut reference = ArrayTrackServer::new(region());
    let mut ap = ApClient::connect_with(
        server.addr(),
        ClientConfig::default(),
        Encoding::LosslessDelta,
    )
    .expect("connect");
    for (i, pose) in poses().into_iter().enumerate() {
        let spectrum = lobe_spectrum(i, target);
        reference.add_observation_from(i, pose, spectrum.clone(), 0);
        let n = ap.submit(KEY, i as u32, 0, &spectrum).expect("submit");
        assert_eq!(n as usize, i + 1);
    }
    assert_eq!(
        ap.encoding(),
        Encoding::LosslessDelta,
        "no spurious fallback"
    );

    let expected = reference.try_localize().expect("reference fix");
    let mut app = AppClient::connect(server.addr(), ClientConfig::default()).expect("connect");
    let fix = app.localize(KEY, None).expect("networked fix");
    assert_eq!(fix.position.x.to_bits(), expected.position.x.to_bits());
    assert_eq!(fix.position.y.to_bits(), expected.position.y.to_bits());
    assert_eq!(fix.likelihood.to_bits(), expected.likelihood.to_bits());

    let stats = server.shutdown();
    assert_eq!(stats.submits_compressed, 4);
    assert_eq!(stats.submits_raw, 0);
    assert!(stats.uplink_compressed_bytes > 0);
    assert!(
        stats.uplink_raw_equiv_bytes > stats.uplink_compressed_bytes,
        "lossless delta must still beat raw on smooth spectra: {} vs {}",
        stats.uplink_raw_equiv_bytes,
        stats.uplink_compressed_bytes
    );
}

#[test]
fn quantized_uplink_compresses_8x_within_the_fix_budget() {
    // The displacement budget is a *median*: quantization noise (~2·10⁻⁴
    // relative) usually perturbs the fused likelihood surface too little
    // to move the refined optimum at all, but near-plateau geometries can
    // wander centimetres. Nine targets around the room; p50 must stay
    // under 1 mm (empirically most fixes are bit-identical to the raw
    // path).
    let server = spawn(service(), ServeConfig::default(), "127.0.0.1:0").expect("spawn");
    let mut ap =
        ApClient::connect_with(server.addr(), ClientConfig::default(), Encoding::Quantized)
            .expect("connect");
    let mut app = AppClient::connect(server.addr(), ClientConfig::default()).expect("connect");

    let mut displacements = Vec::new();
    for t in 0..9u64 {
        let target = pt(
            1.0 + (t as f64 * 3.47) % 18.0,
            1.0 + (t as f64 * 1.83) % 8.0,
        );
        // Two references: the raw-ingestion fix (the accuracy yardstick)
        // and the grid-snapped fix (what the quantized wire path must
        // match bit-for-bit, since the server fuses exactly what it
        // decoded).
        let mut raw_ref = ArrayTrackServer::new(region());
        let mut snapped_ref = ArrayTrackServer::new(region());
        for (i, pose) in poses().into_iter().enumerate() {
            let spectrum = lobe_spectrum(i, target);
            raw_ref.add_observation_from(i, pose, spectrum.clone(), 0);
            snapped_ref.add_observation_from(i, pose, codec::quantized(&spectrum), 0);
            ap.submit(KEY + t, i as u32, 0, &spectrum).expect("submit");
        }
        let raw_fix = raw_ref.try_localize().expect("raw reference fix");
        let snapped_fix = snapped_ref.try_localize().expect("snapped reference fix");

        let fix = app.localize(KEY + t, None).expect("networked fix");
        assert_eq!(fix.position.x.to_bits(), snapped_fix.position.x.to_bits());
        assert_eq!(fix.position.y.to_bits(), snapped_fix.position.y.to_bits());

        let dx = fix.position.x - raw_fix.position.x;
        let dy = fix.position.y - raw_fix.position.y;
        displacements.push((dx * dx + dy * dy).sqrt());
    }
    displacements.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let p50 = displacements[displacements.len() / 2];
    assert!(
        p50 < 1e-3,
        "quantization moved the median fix {p50} m (budget 1 mm); all: {displacements:?}"
    );

    let stats = server.shutdown();
    assert_eq!(stats.submits_compressed, 9 * 4);
    let ratio = stats.uplink_raw_equiv_bytes as f64 / stats.uplink_compressed_bytes as f64;
    assert!(
        ratio >= 8.0,
        "quantized lobe uplink must compress ≥8×, got {ratio:.2}× \
         ({} raw-equivalent vs {} wire bytes)",
        stats.uplink_raw_equiv_bytes,
        stats.uplink_compressed_bytes
    );
}

#[test]
fn raw_ingestion_accounting_still_adds_up() {
    let target = pt(3.0, 7.0);
    let server = spawn(service(), ServeConfig::default(), "127.0.0.1:0").expect("spawn");
    let mut ap = ApClient::connect(server.addr(), ClientConfig::default()).expect("connect");
    for i in 0..4u32 {
        ap.submit(KEY, i, 0, &lobe_spectrum(i as usize, target))
            .expect("submit");
    }
    let stats = server.shutdown();
    assert_eq!(stats.submits_raw, 4);
    assert_eq!(stats.submits_compressed, 0);
    // Each keyed raw submission: header + key + ap_id + age + bins + values.
    let per_frame = (HEADER_LEN + 8 + 4 + 8 + 4 + 8 * BINS) as u64;
    assert_eq!(stats.uplink_raw_bytes, 4 * per_frame);
    assert_eq!(stats.uplink_compressed_bytes, 0);
}

/// A protocol-v2 era server: decodes headers the old way — any frame type
/// it does not know is an undecodable frame, answered with a courteous
/// `ProtocolError` before hanging up. Knows `SubmitKeyed` and acks it.
fn spawn_old_server() -> (std::net::SocketAddr, thread::JoinHandle<u32>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let handle = thread::spawn(move || {
        let mut raw_submits = 0u32;
        // Serve exactly two connections: the one that gets refused and
        // the fallback redial.
        for _ in 0..2 {
            let (mut stream, _) = listener.accept().expect("accept");
            raw_submits += serve_old_conn(&mut stream);
        }
        raw_submits
    });
    (addr, handle)
}

fn serve_old_conn(stream: &mut TcpStream) -> u32 {
    let mut raw_submits = 0u32;
    loop {
        let mut header = [0u8; HEADER_LEN];
        if stream.read_exact(&mut header).is_err() {
            return raw_submits; // client went away
        }
        let ty = header[3];
        let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]) as usize;
        let mut payload = vec![0u8; len];
        stream.read_exact(&mut payload).expect("payload");
        // Anything past 0x07 postdates protocol v2 (responses live at
        // 0x80+ and never arrive at a server).
        if (0x08..0x80).contains(&ty) {
            // An old decoder has never heard of this type: report and close.
            let refusal = Frame::ProtocolError {
                code: errcode::UNDECODABLE,
                message: "unknown frame type".into(),
            };
            stream.write_all(&refusal.encode()).expect("refusal");
            return raw_submits;
        }
        let mut wire = header.to_vec();
        wire.extend_from_slice(&payload);
        let (frame, _) = proto::decode(&wire)
            .expect("old-server frame")
            .expect("complete frame");
        match frame {
            Frame::SubmitKeyed { .. } => {
                raw_submits += 1;
                let ack = Frame::SubmitAck {
                    observations: raw_submits,
                };
                stream.write_all(&ack.encode()).expect("ack");
            }
            other => panic!("old server got unexpected frame {other:?}"),
        }
    }
}

#[test]
fn compressed_policy_falls_back_to_raw_against_an_old_server() {
    let (addr, old_server) = spawn_old_server();
    let mut ap = ApClient::connect_with(addr, ClientConfig::default(), Encoding::Quantized)
        .expect("connect");
    assert_eq!(ap.encoding(), Encoding::Quantized);

    // The first submission hits the version wall, falls back, and still
    // lands: the caller sees one successful ack, not an error.
    let spectrum = lobe_spectrum(0, pt(5.0, 5.0));
    let n = ap.submit(KEY, 0, 0, &spectrum).expect("fallback submit");
    assert_eq!(n, 1);
    assert_eq!(
        ap.encoding(),
        Encoding::Raw,
        "client must observably downgrade after the refusal"
    );

    // Subsequent submissions go straight to raw on the redialed connection.
    let n = ap.submit(KEY, 1, 0, &spectrum).expect("raw submit");
    assert_eq!(n, 2);

    drop(ap);
    let raw_submits = old_server.join().expect("old server");
    assert_eq!(raw_submits, 2, "both spectra must arrive as raw frames");
}

#[test]
fn explicit_compressed_submit_on_the_legacy_session_path() {
    // `Client::submit_compressed` drives the unkeyed v3 frame; it must
    // land in the same per-connection session raw submissions use.
    let target = pt(15.0, 2.0);
    let server = spawn(service(), ServeConfig::default(), "127.0.0.1:0").expect("spawn");
    let mut c = at_serve::Client::connect(server.addr(), ClientConfig::default()).expect("connect");

    let mut reference = ArrayTrackServer::new(region());
    for (i, pose) in poses().into_iter().enumerate() {
        let spectrum = lobe_spectrum(i, target);
        reference.add_observation_from(i, pose, spectrum.clone(), 0);
        let n = c
            .submit_compressed(i as u32, 0, CompressedMode::Lossless, &spectrum)
            .expect("submit");
        assert_eq!(n as usize, i + 1);
    }
    let expected = reference.try_localize().expect("reference fix");
    let fix = c.localize(None).expect("networked fix");
    assert_eq!(fix.position.x.to_bits(), expected.position.x.to_bits());
    assert_eq!(fix.position.y.to_bits(), expected.position.y.to_bits());
    server.shutdown();
}
