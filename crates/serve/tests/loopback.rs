//! End-to-end loopback tests of the location server: bit-exact parity
//! with the in-process `ArrayTrackServer`, health/error semantics over
//! the wire, load shedding, deadline enforcement, and graceful drain.

use at_channel::geometry::{pt, Point};
use at_core::health::{ApStatus, HealthPolicy, LocalizeError};
use at_core::synthesis::{ApPose, SearchRegion};
use at_core::{AoaSpectrum, ArrayTrackServer};
use at_serve::{spawn, BatchPolicy, Client, ClientConfig, ClientError, ServeConfig, ServiceConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const BINS: usize = 360;

/// A four-AP deployment around a 20 m × 10 m room.
fn poses() -> Vec<ApPose> {
    vec![
        ApPose {
            center: pt(0.0, 0.0),
            axis_angle: 0.3,
        },
        ApPose {
            center: pt(20.0, 0.0),
            axis_angle: 2.0,
        },
        ApPose {
            center: pt(20.0, 10.0),
            axis_angle: -2.2,
        },
        ApPose {
            center: pt(0.0, 10.0),
            axis_angle: -0.4,
        },
    ]
}

fn region() -> SearchRegion {
    SearchRegion::new(pt(0.0, 0.0), pt(20.0, 10.0))
}

/// A lobe spectrum for AP `ap` aimed at the true position `target` — not
/// physical MUSIC output, but a valid spectrum whose fusion is
/// well-defined, which is all parity needs.
fn lobe_spectrum(ap: usize, target: Point) -> AoaSpectrum {
    let bearing = poses()[ap].bearing_to(target);
    AoaSpectrum::from_fn(BINS, |t| {
        let d = at_channel::geometry::angle_diff(t, bearing);
        (-(d / 0.25).powi(2)).exp() + 0.01
    })
}

fn service(policy: HealthPolicy) -> ServiceConfig {
    ServiceConfig {
        poses: poses(),
        region: region(),
        bins: BINS,
        policy,
    }
}

fn client(addr: std::net::SocketAddr) -> Client {
    Client::connect(addr, ClientConfig::default()).expect("connect")
}

#[test]
fn networked_fix_is_bit_exact_with_in_process_server() {
    let target = pt(6.5, 3.5);
    let server = spawn(
        service(HealthPolicy::default()),
        ServeConfig::default(),
        "127.0.0.1:0",
    )
    .expect("spawn");

    // In-process reference: same poses, same spectra, same order. The
    // engine's per-pose grids are computed independently, so the
    // deployment-wide engine and the observation-built engine agree
    // bit-for-bit.
    let mut reference = ArrayTrackServer::new(region());
    let mut c = client(server.addr());
    for ap in 0..poses().len() {
        let spectrum = lobe_spectrum(ap, target);
        reference.add_observation_from(ap, poses()[ap], spectrum.clone(), 0);
        let n = c.submit(ap as u32, 0, &spectrum).expect("submit");
        assert_eq!(n as usize, ap + 1);
    }
    let expected = reference.try_localize().expect("reference fix");
    let fix = c.localize(None).expect("networked fix");
    assert_eq!(fix.position.x.to_bits(), expected.position.x.to_bits());
    assert_eq!(fix.position.y.to_bits(), expected.position.y.to_bits());
    assert_eq!(fix.likelihood.to_bits(), expected.likelihood.to_bits());
    // All four APs healthy in the response.
    assert_eq!(fix.health.len(), 4);
    assert!(fix
        .health
        .iter()
        .all(|h| h.status == ApStatus::Healthy && h.consecutive_failures == 0));

    // A subset session (APs 0 and 2) also matches a subset-built server.
    let mut subset_ref = ArrayTrackServer::new(region());
    c.clear().expect("clear");
    for ap in [0usize, 2] {
        let spectrum = lobe_spectrum(ap, target);
        subset_ref.add_observation_from(ap, poses()[ap], spectrum.clone(), 0);
        c.submit(ap as u32, 0, &spectrum).expect("submit");
    }
    let expected = subset_ref.try_localize().expect("subset fix");
    let fix = c.localize(None).expect("networked subset fix");
    assert_eq!(fix.position.x.to_bits(), expected.position.x.to_bits());
    assert_eq!(fix.position.y.to_bits(), expected.position.y.to_bits());
    assert_eq!(fix.likelihood.to_bits(), expected.likelihood.to_bits());

    let stats = server.shutdown();
    assert_eq!(stats.fixes, 2);
    assert_eq!(stats.shed, 0);
}

#[test]
fn degraded_deployment_keeps_typed_semantics_over_the_wire() {
    let target = pt(12.0, 4.0);
    let policy = HealthPolicy {
        min_quorum: 2,
        ..HealthPolicy::default()
    };
    let server = spawn(service(policy), ServeConfig::default(), "127.0.0.1:0").expect("spawn");
    let mut reference = ArrayTrackServer::new(region()).with_policy(policy);
    let mut c = client(server.addr());

    // A stale AP 1 leaves only one usable observation: quorum not met,
    // with the exact counts the in-process server reports.
    reference.add_observation_from(0, poses()[0], lobe_spectrum(0, target), 0);
    reference.add_observation_from(1, poses()[1], lobe_spectrum(1, target), 10);
    c.submit(0, 0, &lobe_spectrum(0, target)).expect("submit");
    c.submit(1, 10, &lobe_spectrum(1, target)).expect("submit");
    let expected = reference.try_localize().expect_err("stale quorum");
    match c.localize(None) {
        Err(ClientError::Localize(e)) => assert_eq!(e, expected),
        other => panic!("wanted the reference LocalizeError, got {other:?}"),
    }
    assert_eq!(
        expected,
        LocalizeError::QuorumNotMet {
            available: 1,
            required: 2,
            stale: 1,
            down: 0,
            degenerate: 0,
        }
    );

    // Failures after submission degrade AP 1: the fix is tempered the
    // same way in-process and its health report says degraded.
    reference.clear();
    c.clear().expect("clear");
    for ap in 0..2 {
        reference.add_observation_from(ap, poses()[ap], lobe_spectrum(ap, target), 0);
        c.submit(ap as u32, 0, &lobe_spectrum(ap, target))
            .expect("submit");
    }
    for _ in 0..2 {
        reference.report_acquisition_failure(1);
        c.report_failure(1).expect("report");
    }
    let expected = reference.try_localize().expect("degraded fix");
    let fix = c.localize(None).expect("networked degraded fix");
    assert_eq!(fix.position.x.to_bits(), expected.position.x.to_bits());
    assert_eq!(fix.position.y.to_bits(), expected.position.y.to_bits());
    assert_eq!(fix.likelihood.to_bits(), expected.likelihood.to_bits());
    let ap1 = fix.health.iter().find(|h| h.ap_id == 1).expect("ap 1");
    assert_eq!(ap1.status, ApStatus::Degraded);
    assert_eq!(ap1.consecutive_failures, 2);

    // An empty session fails with NoObservations, typed, over the wire.
    c.clear().expect("clear");
    match c.localize(None) {
        Err(ClientError::Localize(LocalizeError::NoObservations)) => {}
        other => panic!("wanted NoObservations, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn overload_sheds_with_typed_frames_and_server_stays_responsive() {
    let target = pt(3.0, 7.0);
    // One worker, minimal queues: offered load far beyond capacity must
    // shed, not queue.
    let cfg = ServeConfig {
        workers: 1,
        admission_depth: 1,
        exec_depth: 1,
        batch: BatchPolicy {
            window: Duration::from_millis(1),
            max_batch: 2,
        },
        adaptive: None,
        retry_after_ms: 5,
        ..ServeConfig::default()
    };
    let server = spawn(service(HealthPolicy::default()), cfg, "127.0.0.1:0").expect("spawn");
    let addr = server.addr();

    let fixes = Arc::new(AtomicUsize::new(0));
    let sheds = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..32)
        .map(|_| {
            let fixes = Arc::clone(&fixes);
            let sheds = Arc::clone(&sheds);
            thread::spawn(move || {
                // No client-side retry: a shed must surface as Overloaded.
                let cfg = ClientConfig {
                    max_attempts: 1,
                    ..ClientConfig::default()
                };
                let mut c = Client::connect(addr, cfg).expect("connect");
                for ap in 0..4u32 {
                    c.submit(ap, 0, &lobe_spectrum(ap as usize, target))
                        .expect("submit");
                }
                for _ in 0..4 {
                    match c.localize(None) {
                        Ok(_) => fixes.fetch_add(1, Ordering::Relaxed),
                        Err(ClientError::Overloaded { .. }) => {
                            sheds.fetch_add(1, Ordering::Relaxed)
                        }
                        Err(e) => panic!("unexpected error under load: {e}"),
                    };
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    let fixed = fixes.load(Ordering::Relaxed);
    let shed = sheds.load(Ordering::Relaxed);
    assert_eq!(fixed + shed, 32 * 4);
    assert!(fixed > 0, "some requests must be served");
    assert!(shed > 0, "offered load beyond capacity must shed");

    // The server is still fully responsive after the storm.
    let mut c = client(addr);
    c.ping(42).expect("ping after overload");
    c.submit(0, 0, &lobe_spectrum(0, target)).expect("submit");
    c.localize(None).expect("fix after overload");

    let stats = server.shutdown();
    assert_eq!(stats.shed, shed as u64);
    assert!(stats.fixes >= fixed as u64);
}

#[test]
fn queued_past_deadline_requests_are_dropped_before_fusion() {
    // A long batching window guarantees the request's 5 ms budget expires
    // while it waits for batch companions that never come.
    let cfg = ServeConfig {
        batch: BatchPolicy {
            window: Duration::from_millis(120),
            max_batch: 8,
        },
        adaptive: None,
        ..ServeConfig::default()
    };
    let server = spawn(service(HealthPolicy::default()), cfg, "127.0.0.1:0").expect("spawn");
    let mut c = client(server.addr());
    c.submit(0, 0, &lobe_spectrum(0, pt(5.0, 5.0)))
        .expect("submit");
    match c.localize(Some(Duration::from_millis(5))) {
        Err(ClientError::DeadlineExceeded) => {}
        other => panic!("wanted DeadlineExceeded, got {other:?}"),
    }
    // Without a deadline the same session localizes fine.
    c.localize(None).expect("fix without deadline");
    let stats = server.shutdown();
    assert_eq!(stats.deadline_missed, 1);
    assert_eq!(stats.fixes, 1);
}

#[test]
fn shutdown_drains_in_flight_requests_then_refuses_new_ones() {
    let target = pt(15.0, 2.0);
    // A long window keeps the admitted request in the batcher while we
    // shut down: it must still be answered.
    let cfg = ServeConfig {
        batch: BatchPolicy {
            window: Duration::from_millis(300),
            max_batch: 8,
        },
        adaptive: None,
        ..ServeConfig::default()
    };
    let server = spawn(service(HealthPolicy::default()), cfg, "127.0.0.1:0").expect("spawn");
    let addr = server.addr();

    let in_flight = thread::spawn(move || {
        let mut c = Client::connect(addr, ClientConfig::default()).expect("connect");
        for ap in 0..4u32 {
            c.submit(ap, 0, &lobe_spectrum(ap as usize, target))
                .expect("submit");
        }
        c.localize(None)
    });
    // Let the request get admitted, then pull the plug mid-batch-window.
    thread::sleep(Duration::from_millis(80));
    let stats = server.shutdown();
    let fix = in_flight
        .join()
        .expect("client thread")
        .expect("in-flight request must drain to a fix");
    assert!(fix.position.x.is_finite() && fix.position.y.is_finite());
    assert_eq!(stats.fixes, 1);

    // The listener is gone: a fresh connection is refused outright.
    assert!(Client::connect(
        addr,
        ClientConfig {
            max_attempts: 1,
            connect_timeout: Duration::from_millis(200),
            ..ClientConfig::default()
        },
    )
    .is_err());
}

#[test]
fn metrics_query_returns_a_prometheus_snapshot_on_any_role() {
    let server = spawn(
        service(HealthPolicy::default()),
        ServeConfig::default(),
        "127.0.0.1:0",
    )
    .expect("spawn");

    // An untyped (role-neutral) session can scrape without ever
    // submitting or localizing.
    let mut c = client(server.addr());
    let text = c.metrics().expect("metrics");
    assert!(
        text.contains("at_serve_connections_total"),
        "scrape missing serve counters: {}",
        &text[..text.len().min(400)]
    );
    assert!(text.contains("# TYPE"), "not Prometheus text format");

    // The scrape is read-only: the same session still takes the App
    // role afterwards and gets the usual typed refusal on an empty
    // session, and both typed roles can scrape too.
    assert!(matches!(
        c.localize(None),
        Err(ClientError::Localize(LocalizeError::NoObservations))
    ));
    let mut ap =
        at_serve::ApClient::connect(server.addr(), ClientConfig::default()).expect("ap connect");
    assert!(ap.metrics().expect("ap metrics").contains("at_serve"));
    let mut app =
        at_serve::AppClient::connect(server.addr(), ClientConfig::default()).expect("app connect");
    assert!(app.metrics().expect("app metrics").contains("at_serve"));
    server.shutdown();
}
