//! Property tests for the wire protocol: the decoder is total (never
//! panics, for any bytes) and encode→decode is bit-exact for every frame
//! type.

use at_core::health::{ApStatus, LocalizeError};
use at_core::AoaSpectrum;
use at_serve::proto::{
    decode, ApHealthReport, DecodeError, Frame, HEADER_LEN, MAGIC, MIN_VERSION, VERSION,
};
use proptest::prelude::*;

/// Round-trips `frame` and checks bit-exactness (f64 payloads compare via
/// `AoaSpectrum`/`f64` `PartialEq`, which the encoders preserve bit-for-bit
/// through `to_bits`/`from_bits`).
fn roundtrip_exact(frame: &Frame) {
    let bytes = frame.encode();
    let (decoded, used) = decode(&bytes)
        .expect("own encoding must decode")
        .expect("own encoding is complete");
    assert_eq!(used, bytes.len());
    assert_eq!(&decoded, frame);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes never panic the decoder: they decode, ask for
    /// more, or fail with a typed error.
    #[test]
    fn decoder_is_total_on_random_bytes(bytes in proptest::collection::vec((0u32..256).prop_map(|v| v as u8), 0..96)) {
        let _ = decode(&bytes);
    }

    /// Random bytes carrying a valid header prefix exercise the payload
    /// parsers without panicking.
    #[test]
    fn decoder_is_total_on_header_shaped_bytes(
        ty_raw in 0u32..256,
        payload in proptest::collection::vec((0u32..256).prop_map(|v| v as u8), 0..64),
    ) {
        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(ty_raw as u8);
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let _ = decode(&bytes);
    }

    /// Truncating or bit-flipping a valid frame never panics, and a
    /// truncation is never misread as a complete frame.
    #[test]
    fn corrupted_frames_fail_cleanly(
        token in 0u64..u64::MAX,
        cut_frac in 0.0f64..1.0,
        flip_frac in 0.0f64..1.0,
        flip_bit in 0u8..8,
    ) {
        let bytes = Frame::Ping { token }.encode();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if let Ok(Some((_, used))) = decode(&bytes[..cut.min(bytes.len())]) {
            prop_assert!(used <= cut);
        }
        let mut flipped = bytes.clone();
        let at = ((flipped.len() as f64) * flip_frac) as usize % flipped.len();
        flipped[at] ^= 1 << flip_bit;
        let _ = decode(&flipped);
    }

    /// Spectrum submissions round-trip bit-exactly for arbitrary finite
    /// non-negative spectra.
    #[test]
    fn submit_roundtrips_bit_exact(
        ap_id in 0u32..64,
        age in 0u64..100,
        bins_step in 0usize..4,
        seed in 0u64..u64::MAX,
    ) {
        let bins = [8, 64, 360, 720][bins_step];
        // A deterministic but seed-scrambled spectrum body.
        let mut state = seed | 1;
        let values: Vec<f64> = (0..bins)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64 * 10.0
            })
            .collect();
        let frame = Frame::SubmitSpectrum {
            ap_id,
            age,
            spectrum: AoaSpectrum::from_values(values),
        };
        roundtrip_exact(&frame);
    }

    /// Fix frames round-trip bit-exactly, including negative/tiny floats
    /// and per-AP health entries.
    #[test]
    fn fix_roundtrips_bit_exact(
        x in -1e6f64..1e6,
        y in -1e6f64..1e6,
        exp in -300i32..300,
        n_aps in 0usize..6,
        status_pick in 0u8..3,
        fails in 0u32..100,
    ) {
        let status = match status_pick {
            0 => ApStatus::Healthy,
            1 => ApStatus::Degraded,
            _ => ApStatus::Down,
        };
        let frame = Frame::Fix {
            x,
            y,
            likelihood: 1.5f64 * 10f64.powi(exp),
            health: (0..n_aps)
                .map(|i| ApHealthReport {
                    ap_id: i as u32,
                    status,
                    consecutive_failures: fails,
                })
                .collect(),
        };
        roundtrip_exact(&frame);
    }

    /// Every simple frame type round-trips for arbitrary field values.
    #[test]
    fn simple_frames_roundtrip(
        a in 0u32..u32::MAX,
        b in 0u64..u64::MAX,
        c in 0usize..10_000,
    ) {
        roundtrip_exact(&Frame::ReportFailure { ap_id: a });
        roundtrip_exact(&Frame::Localize { deadline_ms: a });
        roundtrip_exact(&Frame::ClearSession);
        roundtrip_exact(&Frame::Ping { token: b });
        roundtrip_exact(&Frame::SubmitAck { observations: a });
        roundtrip_exact(&Frame::Overloaded { retry_after_ms: a });
        roundtrip_exact(&Frame::DeadlineExceeded);
        roundtrip_exact(&Frame::Pong { token: b });
        roundtrip_exact(&Frame::ShuttingDown);
        roundtrip_exact(&Frame::Failed { error: LocalizeError::NoObservations });
        roundtrip_exact(&Frame::Failed {
            error: LocalizeError::QuorumNotMet {
                available: c,
                required: c + 1,
                stale: c / 2,
                down: c / 3,
                degenerate: c / 5,
            },
        });
        roundtrip_exact(&Frame::Failed {
            error: LocalizeError::ResolutionMismatch {
                observation: c,
                bins: c + 8,
                expected: c + 16,
            },
        });
    }

    /// Protocol-error messages survive the trip (ASCII subset; the
    /// encoder truncates at u16::MAX and re-reads as lossy UTF-8).
    #[test]
    fn protocol_error_roundtrips(
        code_raw in 0u32..256,
        msg_len in 0usize..200,
        fill in 32u8..127,
    ) {
        let code = code_raw as u8;
        let frame = Frame::ProtocolError {
            code,
            message: String::from_utf8(vec![fill; msg_len]).unwrap(),
        };
        roundtrip_exact(&frame);
    }

    /// The keyed (v2) frames round-trip bit-exactly for arbitrary keys,
    /// APs, ages, deadlines, and seed-scrambled spectra.
    #[test]
    fn keyed_frames_roundtrip_bit_exact(
        key in 0u64..u64::MAX,
        ap_id in 0u32..64,
        age in 0u64..100,
        deadline_ms in 0u32..u32::MAX,
        bins_step in 0usize..4,
        seed in 0u64..u64::MAX,
    ) {
        let bins = [8, 64, 360, 720][bins_step];
        let mut state = seed | 1;
        let values: Vec<f64> = (0..bins)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64 * 10.0
            })
            .collect();
        roundtrip_exact(&Frame::SubmitKeyed {
            key,
            ap_id,
            age,
            spectrum: AoaSpectrum::from_values(values),
        });
        roundtrip_exact(&Frame::LocalizeKey { key, deadline_ms });
    }

    /// A keyed frame whose header claims an old protocol version is
    /// rejected with the typed `VersionGated` error — never misparsed,
    /// never accepted.
    #[test]
    fn keyed_frames_under_old_versions_fail_typed(
        key in 0u64..u64::MAX,
        deadline_ms in 0u32..u32::MAX,
    ) {
        let mut bytes = Frame::LocalizeKey { key, deadline_ms }.encode();
        prop_assert_eq!(bytes[2], 2, "keyed frames declare v2 on the wire");
        bytes[2] = MIN_VERSION; // replay under the v1 header
        match decode(&bytes) {
            Err(DecodeError::VersionGated { got, need, .. }) => {
                prop_assert_eq!(got, MIN_VERSION);
                prop_assert_eq!(need, 2);
            }
            other => prop_assert!(false, "wanted VersionGated, got {:?}", other),
        }
    }

    /// Any version byte on an otherwise header-shaped frame either
    /// decodes (in the supported range) or fails typed: out-of-range
    /// versions get `BadVersion`, in-range versions never panic on any
    /// payload.
    #[test]
    fn arbitrary_version_bytes_never_panic(
        version_raw in 0u32..256,
        ty_raw in 0u32..256,
        payload in proptest::collection::vec((0u32..256).prop_map(|v| v as u8), 0..64),
    ) {
        let version = version_raw as u8;
        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(&MAGIC);
        bytes.push(version);
        bytes.push(ty_raw as u8);
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        match decode(&bytes) {
            Err(DecodeError::BadVersion { got }) => {
                prop_assert_eq!(got, version);
                prop_assert!(!(MIN_VERSION..=VERSION).contains(&version));
            }
            _ => prop_assert!((MIN_VERSION..=VERSION).contains(&version)),
        }
    }
}
