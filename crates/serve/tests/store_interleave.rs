//! Barrier-driven interleaving tests for the session store's one
//! hazardous surface: a localize snapshot racing a submit for the same
//! key must see the old spectrum or the new one *whole* — never a torn
//! mix of both.
//!
//! The store's guarantee comes from replacing each slot's
//! `Arc<AoaSpectrum>` under the shard lock instead of mutating bins in
//! place. These tests drive writer/reader pairs through a barrier so
//! every round actually overlaps, then assert that every observed
//! spectrum is one of the two well-formed generations — any in-place
//! mutation scheme fails this in a handful of rounds.

use at_core::AoaSpectrum;
use at_serve::{SessionPolicy, SessionStore};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

const BINS: usize = 256;
const ROUNDS: usize = 200;

/// A spectrum whose every bin encodes its generation: torn mixes are
/// detectable by scanning for two different values.
fn generation_spectrum(generation: u64) -> Arc<AoaSpectrum> {
    let level = 1.0 + generation as f64;
    Arc::new(AoaSpectrum::from_fn(BINS, move |_| level))
}

fn store() -> SessionStore {
    SessionStore::new(
        2,
        SessionPolicy {
            idle_timeout: Duration::from_secs(3600),
            max_resident_spectra: 16,
            reap_interval: Duration::from_secs(3600),
            refresh_interval: Duration::from_secs(3600),
            shards: 4,
        },
    )
}

/// The level every bin of a snapshot carries, panicking on a torn read.
fn uniform_level(snapshot: &AoaSpectrum) -> f64 {
    let values = snapshot.values();
    let first = values[0];
    for (bin, &v) in values.iter().enumerate() {
        assert!(
            v.to_bits() == first.to_bits(),
            "torn spectrum: bin 0 reads {first}, bin {bin} reads {v}"
        );
    }
    first
}

#[test]
fn concurrent_submit_and_snapshot_never_tear_a_spectrum() {
    let store = Arc::new(store());
    store.submit(1, 0, 0, generation_spectrum(0));
    let start = Arc::new(Barrier::new(2));

    let writer = {
        let store = Arc::clone(&store);
        let start = Arc::clone(&start);
        thread::spawn(move || {
            for generation in 1..=ROUNDS as u64 {
                start.wait(); // overlap this submit with one snapshot
                store.submit(1, 0, 0, generation_spectrum(generation));
            }
        })
    };

    let mut last_seen = 0.0f64;
    for _ in 0..ROUNDS {
        start.wait();
        let snap = store.snapshot(1).expect("resident");
        assert_eq!(snap.len(), 1);
        let level = uniform_level(&snap[0].spectrum);
        // Old or new, and never moving backwards: generations only grow.
        assert!(
            level >= last_seen,
            "snapshot regressed from generation {last_seen} to {level}"
        );
        last_seen = level;
    }
    writer.join().expect("writer");

    // After the storm the final generation is visible, whole.
    let snap = store.snapshot(1).expect("resident");
    assert_eq!(uniform_level(&snap[0].spectrum), 1.0 + ROUNDS as f64);
}

#[test]
fn a_snapshot_outlives_the_submit_that_replaces_it() {
    // The race the fix is about, in its sharpest form: a reader holds a
    // snapshot while the writer replaces the slot. The snapshot's Arc
    // must keep the *old* generation intact — replacement may not mutate
    // what the reader already holds.
    let store = store();
    store.submit(5, 1, 0, generation_spectrum(7));
    let held = store.snapshot(5).expect("resident");
    store.submit(5, 1, 0, generation_spectrum(8));
    assert_eq!(uniform_level(&held[0].spectrum), 8.0); // generation 7 level = 1+7
    let fresh = store.snapshot(5).expect("resident");
    assert_eq!(uniform_level(&fresh[0].spectrum), 9.0); // generation 8 level = 1+8
}

#[test]
fn writers_on_different_aps_of_one_key_interleave_safely() {
    let store = Arc::new(store());
    let start = Arc::new(Barrier::new(3));
    let writers: Vec<_> = (0..2)
        .map(|ap| {
            let store = Arc::clone(&store);
            let start = Arc::clone(&start);
            thread::spawn(move || {
                for generation in 0..ROUNDS as u64 {
                    if generation == 0 {
                        start.wait();
                    }
                    store.submit(9, ap, 0, generation_spectrum(generation));
                }
            })
        })
        .collect();
    start.wait();
    for _ in 0..ROUNDS {
        if let Some(snap) = store.snapshot(9) {
            for obs in &snap {
                uniform_level(&obs.spectrum);
            }
        }
    }
    for w in writers {
        w.join().expect("writer");
    }
    let snap = store.snapshot(9).expect("resident");
    assert_eq!(snap.len(), 2, "both AP slots resident");
    assert_eq!(snap[0].ap_id, 0);
    assert_eq!(snap[1].ap_id, 1);
}
