//! Property tests for the topology-epoch machinery: the v5 `Reconfigure`
//! decoder is total (never panics, for any payload bytes), topology
//! frames round-trip bit-exactly, and arbitrary op sequences — valid or
//! not — never panic `SystemConfig::apply` or the session store's remap,
//! while the store's counters stay consistent through every transition.

use std::sync::Arc;

use at_channel::geometry::pt;
use at_config::{SessionPolicy, SystemConfig, TopologyOp};
use at_core::synthesis::{ApPose, SearchRegion};
use at_core::AoaSpectrum;
use at_serve::proto::{decode, Frame, HEADER_LEN, MAGIC, VERSION};
use at_serve::SessionStore;
use proptest::prelude::*;

fn pose_strategy() -> impl Strategy<Value = ApPose> {
    (-50.0f64..50.0, -50.0f64..50.0, -3.2f64..3.2).prop_map(|(x, y, axis_angle)| ApPose {
        center: pt(x, y),
        axis_angle,
    })
}

/// Ops with ids deliberately allowed out of range, so refusal paths get
/// as much coverage as applications.
fn op_strategy() -> impl Strategy<Value = TopologyOp> {
    (0u32..3, 0u32..10, pose_strategy()).prop_map(|(kind, ap_id, pose)| match kind {
        0 => TopologyOp::Add { pose },
        1 => TopologyOp::Remove { ap_id },
        _ => TopologyOp::Move { ap_id, pose },
    })
}

fn base_config(n_aps: usize) -> SystemConfig {
    SystemConfig {
        poses: (0..n_aps)
            .map(|i| ApPose {
                center: pt(i as f64 * 5.0, 0.0),
                axis_angle: 0.1 * i as f64,
            })
            .collect(),
        region: SearchRegion::new(pt(0.0, 0.0), pt(20.0, 10.0)),
        bins: 96,
        health: Default::default(),
        session: SessionPolicy {
            max_resident_spectra: 64,
            ..SessionPolicy::default()
        },
        codec: Default::default(),
    }
}

fn flat_spectrum() -> Arc<AoaSpectrum> {
    Arc::new(AoaSpectrum::from_values(vec![1.0; 16]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A v5 `Reconfigure` frame with arbitrary payload bytes never
    /// panics the decoder: it decodes, asks for more, or fails typed.
    #[test]
    fn reconfigure_payloads_never_panic_decoder(
        payload in proptest::collection::vec((0u32..256).prop_map(|v| v as u8), 0..96),
    ) {
        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(0x0B); // Reconfigure
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let _ = decode(&bytes);
    }

    /// `Reconfigure` and `TopologyInfo` round-trip bit-exactly for
    /// arbitrary ops and pose lists.
    #[test]
    fn topology_frames_roundtrip_bit_exact(
        op in op_strategy(),
        epoch in 0u64..u64::MAX,
        fingerprint in 0u64..u64::MAX,
        poses in proptest::collection::vec(pose_strategy(), 0..8),
    ) {
        for frame in [
            Frame::Reconfigure { op },
            Frame::TopologyQuery,
            Frame::TopologyInfo { epoch, fingerprint, poses },
        ] {
            let bytes = frame.encode();
            let (decoded, used) = decode(&bytes)
                .expect("own encoding must decode")
                .expect("own encoding is complete");
            prop_assert_eq!(used, bytes.len());
            prop_assert_eq!(&decoded, &frame);
        }
    }

    /// An encoded op round-trips through `TopologyOp::decode` exactly and
    /// consumes every byte it wrote.
    #[test]
    fn topology_ops_roundtrip(op in op_strategy()) {
        let mut bytes = Vec::new();
        op.encode(&mut bytes);
        let (decoded, used) = TopologyOp::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(decoded, op);
    }

    /// Arbitrary op sequences never panic `SystemConfig::apply` or the
    /// store: each op either applies (config re-validates, store remaps,
    /// counters stay consistent, the store keeps accepting submits) or is
    /// refused typed with the config and store untouched.
    #[test]
    fn op_sequences_never_panic_config_or_store(
        n0 in 1usize..6,
        ops in proptest::collection::vec(op_strategy(), 0..12),
        keys in proptest::collection::vec(0u64..8, 0..12),
    ) {
        let mut config = base_config(n0);
        let store = SessionStore::new(config.poses.len(), config.session);
        // Seed some resident sessions so remaps shift real spectra.
        for (i, &key) in keys.iter().enumerate() {
            store.submit(key, i % config.poses.len(), 0, flat_spectrum());
        }
        for op in &ops {
            match config.apply(op) {
                Ok((next, mapping)) => {
                    prop_assert!(next.validate().is_ok(), "applied config must re-validate");
                    prop_assert_eq!(mapping.n_new, next.poses.len());
                    prop_assert_eq!(mapping.old_to_new.len(), config.poses.len());
                    store.remap(&mapping.old_to_new, mapping.n_new);
                    config = next;
                }
                Err(_) => continue, // typed refusal; epoch unchanged
            }
            let stats = store.stats();
            prop_assert!(
                stats.resident_spectra <= config.session.max_resident_spectra as u64,
                "remap must not overflow the resident cap"
            );
            // The store keeps serving the new epoch's id space.
            store.submit(99, config.poses.len() - 1, 0, flat_spectrum());
            prop_assert!(store.snapshot(99).is_some());
            store.clear(99);
        }
    }
}
