//! Spectrum acquisition under injected faults: the capture path of
//! [`crate::deployment`] run through a [`FaultPlan`], with the retry /
//! timeout semantics of a real acquisition loop and a typed error surface.
//!
//! Each fault kind lands at its physically honest layer:
//!
//! - **AP outage** — no capture at all; [`AcquireError::ApDown`] before
//!   any radio work.
//! - **Dead antenna elements** — zero complex gain in the channel model
//!   (`AntennaArray::with_dead_elements`): the port records only noise.
//!   An array with *no* live in-row element cannot detect a preamble at
//!   all ⇒ [`AcquireError::NoSignal`].
//! - **Calibration drift** — the correction table shifts away from the
//!   hardware truth (`Calibration::with_drift`), so the applied
//!   "correction" now injects phase error.
//! - **Missed detections** — per-frame Bernoulli draws from the plan;
//!   each frame is retried up to [`AcquireConfig::max_attempts`] times,
//!   and a group with zero detected frames is [`AcquireError::Timeout`].
//! - **Noise-floor spikes** — the receiver noise power is multiplied by
//!   the profile's linear spike factor.
//! - **Stale spectra** — not an acquisition failure: the spectrum is
//!   returned together with its age, and the server's [`HealthPolicy`]
//!   decides whether to trust it.
//!
//! With an all-healthy plan every draw is a no-op and the produced
//! spectrum is **bit-identical** to [`crate::experiments::compute_spectrum`]
//! on the same RNG stream — the robustness tier asserts this.

use crate::deployment::Deployment;
use crate::experiments::ExperimentConfig;
use at_channel::Transmitter;
use at_core::faults::FaultPlan;
use at_core::health::{HealthPolicy, LocalizeError};
use at_core::pipeline::{process_frame_group, ArrayTrackServer};
use at_core::suppression::SuppressionConfig;
use at_core::synthesis::LocationEstimate;
use at_core::AoaSpectrum;
use rand::Rng;
use std::fmt;

/// Acquisition-loop settings.
#[derive(Clone, Copy, Debug)]
pub struct AcquireConfig {
    /// Preamble-detection attempts per frame before giving up on it.
    pub max_attempts: u64,
}

impl Default for AcquireConfig {
    fn default() -> Self {
        Self { max_attempts: 3 }
    }
}

/// Why an AP produced no spectrum this refresh interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AcquireError {
    /// The AP is powered off or unreachable.
    ApDown {
        /// Deployment AP index.
        ap: usize,
    },
    /// Every in-row antenna element is dead: there is no aperture left to
    /// detect a preamble on.
    NoSignal {
        /// Deployment AP index.
        ap: usize,
    },
    /// No frame cleared preamble detection within the attempt budget.
    Timeout {
        /// Deployment AP index.
        ap: usize,
        /// Attempts made per frame before declaring the timeout.
        attempts: u64,
    },
}

impl fmt::Display for AcquireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ApDown { ap } => write!(f, "AP {ap} is down (outage)"),
            Self::NoSignal { ap } => {
                write!(f, "AP {ap} has no live in-row antenna elements")
            }
            Self::Timeout { ap, attempts } => write!(
                f,
                "AP {ap}: no preamble detected within {attempts} attempts per frame"
            ),
        }
    }
}

impl std::error::Error for AcquireError {}

/// A successfully acquired spectrum plus the metadata the server's
/// degradation policy consumes.
#[derive(Clone, Debug)]
pub struct Acquisition {
    /// The processed (suppressed) AoA spectrum.
    pub spectrum: AoaSpectrum,
    /// Spectrum age in refresh intervals (from the fault profile; 0 =
    /// fresh).
    pub age: u64,
    /// Frames that actually cleared detection (≤ the configured group
    /// size; fewer frames means weaker multipath suppression).
    pub frames_detected: usize,
}

/// Acquires one client's processed spectrum at one AP under the fault
/// plan. `client_idx` indexes `dep.clients` and keys the deterministic
/// missed-detection draws.
pub fn acquire_spectrum<R: Rng>(
    dep: &Deployment,
    ap_idx: usize,
    client_idx: usize,
    cfg: &ExperimentConfig,
    plan: &FaultPlan,
    acq: &AcquireConfig,
    rng: &mut R,
) -> Result<Acquisition, AcquireError> {
    let _t = at_obs::time_stage!(
        at_obs::stages::ACQUIRE,
        "ap" => ap_idx,
        "client" => client_idx,
    );
    let result = acquire_spectrum_inner(dep, ap_idx, client_idx, cfg, plan, acq, rng);
    match &result {
        Ok(_) => at_obs::count!("at_acquisitions_total", "result" => "ok"),
        Err(AcquireError::ApDown { .. }) => {
            at_obs::count!("at_acquisitions_total", "result" => "ap_down")
        }
        Err(AcquireError::NoSignal { .. }) => {
            at_obs::count!("at_acquisitions_total", "result" => "no_signal")
        }
        Err(AcquireError::Timeout { .. }) => {
            at_obs::count!("at_acquisitions_total", "result" => "timeout")
        }
    }
    result
}

fn acquire_spectrum_inner<R: Rng>(
    dep: &Deployment,
    ap_idx: usize,
    client_idx: usize,
    cfg: &ExperimentConfig,
    plan: &FaultPlan,
    acq: &AcquireConfig,
    rng: &mut R,
) -> Result<Acquisition, AcquireError> {
    let profile = plan.ap(ap_idx);
    if profile.outage {
        return Err(AcquireError::ApDown { ap: ap_idx });
    }
    let ap = &dep.aps[ap_idx];
    let client = dep.clients[client_idx];

    // Impaired hardware state. Dead-element indices beyond this capture's
    // aperture (e.g. the off-row row when `offrow` is disabled) are
    // simply absent hardware and are ignored.
    let array = {
        let base = ap.array(&cfg.capture);
        let total = base.total_elements();
        let dead: Vec<usize> = profile
            .dead_elements
            .iter()
            .copied()
            .filter(|&m| m < total)
            .collect();
        base.with_dead_elements(&dead)
    };
    if array.live_inrow_elements() == 0 {
        return Err(AcquireError::NoSignal { ap: ap_idx });
    }
    let calibration = ap
        .calibration
        .with_drift(&plan.drift_for(ap_idx, ap.frontend.radios()));
    let noise_power = cfg.capture.noise_power * profile.noise_multiplier();

    let tx = Transmitter {
        position: client,
        ..cfg.tx
    };
    let mut blocks = Vec::with_capacity(cfg.frames);
    for f in 0..cfg.frames {
        let detected = (0..acq.max_attempts)
            .any(|attempt| !plan.misses_frame(ap_idx, client_idx, f as u64, attempt));
        if !detected {
            continue;
        }
        // Same semi-static jitter as `capture_frame_group`: frame 0 at the
        // ground-truth position, later frames within `cfg.jitter` meters.
        let p = if f == 0 {
            client
        } else {
            let ang = rng.gen_range(0.0..std::f64::consts::TAU);
            let r = rng.gen_range(0.0..cfg.jitter);
            at_channel::geometry::pt(client.x + r * ang.cos(), client.y + r * ang.sin())
        };
        blocks.push(dep.capture_frame_with(
            ap_idx,
            &array,
            &calibration,
            noise_power,
            p,
            &tx,
            &cfg.capture,
            rng,
        ));
    }
    if blocks.is_empty() {
        return Err(AcquireError::Timeout {
            ap: ap_idx,
            attempts: acq.max_attempts,
        });
    }
    Ok(Acquisition {
        spectrum: process_frame_group(&blocks, &cfg.pipeline, &SuppressionConfig::default()),
        age: profile.spectrum_age,
        frames_detected: blocks.len(),
    })
}

/// The full degradation loop for one client: acquire from every AP under
/// the plan, feed successes and failures into an [`ArrayTrackServer`]'s
/// health tracker, and return its typed localization result.
///
/// Acquisition failures never abort the client — they are reported to the
/// tracker and the remaining APs carry the fix. Only when the surviving
/// set cannot support one does this return the server's [`LocalizeError`].
pub fn localize_under_faults<R: Rng>(
    dep: &Deployment,
    client_idx: usize,
    cfg: &ExperimentConfig,
    plan: &FaultPlan,
    acq: &AcquireConfig,
    policy: &HealthPolicy,
    rng: &mut R,
) -> Result<LocationEstimate, LocalizeError> {
    let mut server = ArrayTrackServer::new(dep.search_region()).with_policy(*policy);
    for ap_idx in 0..dep.aps.len() {
        match acquire_spectrum(dep, ap_idx, client_idx, cfg, plan, acq, rng) {
            Ok(acqn) => {
                server.add_observation_from(ap_idx, dep.aps[ap_idx].pose, acqn.spectrum, acqn.age)
            }
            Err(_) => server.report_acquisition_failure(ap_idx),
        }
    }
    server.try_localize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fast_cfg(seed: u64) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::arraytrack(seed);
        cfg.frames = 2;
        cfg
    }

    #[test]
    fn healthy_acquisition_matches_fault_free_path() {
        let dep = Deployment::free_space(41);
        let cfg = fast_cfg(41);
        let plan = FaultPlan::healthy(dep.aps.len());
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let a = acquire_spectrum(&dep, 0, 3, &cfg, &plan, &AcquireConfig::default(), &mut r1)
            .expect("healthy plan must acquire");
        let b = crate::experiments::compute_spectrum(&dep, 0, dep.clients[3], &cfg, &mut r2);
        assert_eq!(a.age, 0);
        assert_eq!(a.frames_detected, cfg.frames);
        for (x, y) in a.spectrum.values().iter().zip(b.values()) {
            assert_eq!(*x, *y, "healthy fault path must be bit-identical");
        }
    }

    #[test]
    fn outage_is_typed_before_any_capture() {
        let dep = Deployment::free_space(42);
        let cfg = fast_cfg(42);
        let plan = FaultPlan::healthy(dep.aps.len()).with_outage(2);
        let mut rng = StdRng::seed_from_u64(1);
        let err = acquire_spectrum(&dep, 2, 0, &cfg, &plan, &AcquireConfig::default(), &mut rng)
            .unwrap_err();
        assert_eq!(err, AcquireError::ApDown { ap: 2 });
    }

    #[test]
    fn all_elements_dead_is_no_signal() {
        let dep = Deployment::free_space(43);
        let cfg = fast_cfg(43);
        let dead: Vec<usize> = (0..cfg.capture.elements).collect();
        let plan = FaultPlan::healthy(dep.aps.len()).with_dead_elements(1, &dead);
        let mut rng = StdRng::seed_from_u64(2);
        let err = acquire_spectrum(&dep, 1, 0, &cfg, &plan, &AcquireConfig::default(), &mut rng)
            .unwrap_err();
        assert_eq!(err, AcquireError::NoSignal { ap: 1 });
    }

    #[test]
    fn certain_miss_times_out_with_typed_error() {
        let dep = Deployment::free_space(44);
        let cfg = fast_cfg(44);
        let plan = FaultPlan::healthy(dep.aps.len()).with_miss_rate(0, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let err = acquire_spectrum(&dep, 0, 0, &cfg, &plan, &AcquireConfig::default(), &mut rng)
            .unwrap_err();
        assert_eq!(err, AcquireError::Timeout { ap: 0, attempts: 3 });
    }

    #[test]
    fn partial_miss_rate_still_yields_a_spectrum() {
        // With p = 0.5 and 3 attempts per frame, the chance that both
        // frames lose all attempts is (0.5³)² ≈ 1.6% per (seed) draw —
        // this specific seeded plan succeeds, deterministically.
        let dep = Deployment::free_space(45);
        let cfg = fast_cfg(45);
        let plan = FaultPlan::healthy(dep.aps.len()).with_miss_rate(0, 0.5);
        let mut rng = StdRng::seed_from_u64(4);
        let acqn = acquire_spectrum(&dep, 0, 1, &cfg, &plan, &AcquireConfig::default(), &mut rng)
            .expect("seeded 50% miss plan still detects");
        assert!(acqn.frames_detected >= 1);
        assert!(acqn.spectrum.values().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn localize_under_faults_survives_one_outage() {
        let dep = Deployment::free_space(46);
        let cfg = fast_cfg(46);
        let plan = FaultPlan::healthy(dep.aps.len()).with_outage(5);
        let mut rng = StdRng::seed_from_u64(5);
        let policy = HealthPolicy::default();
        let est = localize_under_faults(
            &dep,
            0,
            &cfg,
            &plan,
            &AcquireConfig::default(),
            &policy,
            &mut rng,
        )
        .expect("5 of 6 APs is plenty");
        assert!(est.position.distance(dep.clients[0]) < 2.0);
    }

    #[test]
    fn localize_under_full_outage_is_typed_error() {
        let dep = Deployment::free_space(47);
        let cfg = fast_cfg(47);
        let plan =
            FaultPlan::healthy(dep.aps.len()).with_outages(&(0..dep.aps.len()).collect::<Vec<_>>());
        let mut rng = StdRng::seed_from_u64(6);
        let err = localize_under_faults(
            &dep,
            0,
            &cfg,
            &plan,
            &AcquireConfig::default(),
            &HealthPolicy::default(),
            &mut rng,
        )
        .unwrap_err();
        assert_eq!(err, LocalizeError::NoObservations);
    }
}
