//! RSSI localization baselines (paper §5's comparators).
//!
//! Two classic lines of RSS work frame ArrayTrack's contribution:
//!
//! - **Model-based** (TIX, Lim et al.): fit a log-distance path-loss model
//!   to whole-dB RSS readings and trilaterate — meters of error.
//! - **Map-based** (RADAR, Horus): fingerprint RSS vectors on a training
//!   grid and return the nearest neighbor in signal space — calibration
//!   effort for ~0.6 m–3 m accuracy.
//!
//! Both consume the same simulated channel as ArrayTrack, so the
//! comparison isolates the algorithms rather than the propagation model.

use crate::deployment::{CaptureConfig, Deployment};
use at_channel::geometry::{pt, Point};
use rand::Rng;

/// Log-distance path-loss trilateration.
///
/// Model: `RSS(d) = RSS₀ − 10·n·log₁₀(d/d₀)`. The exponent and intercept
/// are fit per deployment from a handful of reference measurements, then a
/// grid search minimizes the squared RSS residual (equivalent to a
/// Gaussian-noise ML estimate).
#[derive(Clone, Debug)]
pub struct LogDistanceModel {
    /// RSS at the 1 m reference distance, dB.
    pub rss0: f64,
    /// Path-loss exponent `n`.
    pub exponent: f64,
}

impl LogDistanceModel {
    /// Fits the model by least squares over `(distance, rss)` pairs.
    ///
    /// # Panics
    /// Panics with fewer than two samples or non-positive distances.
    pub fn fit(samples: &[(f64, f64)]) -> Self {
        assert!(samples.len() >= 2, "need at least two samples to fit");
        assert!(samples.iter().all(|(d, _)| *d > 0.0));
        // Linear regression of rss on x = -10·log10(d).
        let xs: Vec<f64> = samples.iter().map(|(d, _)| -10.0 * d.log10()).collect();
        let ys: Vec<f64> = samples.iter().map(|(_, r)| *r).collect();
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let var: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
        let exponent = if var > 0.0 { cov / var } else { 2.0 };
        let rss0 = my - exponent * mx; // intercept at x = 0 (d = 1 m)
        Self { rss0, exponent }
    }

    /// Predicted RSS at distance `d` meters.
    pub fn predict(&self, d: f64) -> f64 {
        self.rss0 - 10.0 * self.exponent * d.max(0.1).log10()
    }
}

/// Fits a log-distance model to a deployment using reference probes on a
/// coarse grid (the "calibration-free" flavor fits from the model itself).
pub fn fit_path_loss(dep: &Deployment, cfg: &CaptureConfig) -> LogDistanceModel {
    let mut samples = Vec::new();
    let probes = [
        pt(6.0, 12.0),
        pt(16.0, 8.0),
        pt(24.0, 16.0),
        pt(32.0, 8.0),
        pt(42.0, 12.0),
        pt(24.0, 3.0),
        pt(12.0, 21.0),
        pt(40.0, 21.0),
    ];
    for (i, ap) in dep.aps.iter().enumerate() {
        for p in probes {
            let d = ap.pose.center.distance(p).max(0.5);
            samples.push((d, dep.rss_db(i, p, cfg)));
        }
    }
    LogDistanceModel::fit(&samples)
}

/// Localizes a client by trilateration: grid search minimizing the squared
/// residual between measured and model-predicted RSS at every AP.
pub fn trilaterate(
    dep: &Deployment,
    model: &LogDistanceModel,
    measured_rss: &[f64],
    grid_step: f64,
) -> Point {
    assert_eq!(measured_rss.len(), dep.aps.len());
    let mut best = pt(0.0, 0.0);
    let mut best_cost = f64::INFINITY;
    let (w, h) = (crate::office::WIDTH, crate::office::DEPTH);
    let nx = (w / grid_step) as usize + 1;
    let ny = (h / grid_step) as usize + 1;
    for iy in 0..ny {
        for ix in 0..nx {
            let p = pt(ix as f64 * grid_step, iy as f64 * grid_step);
            let cost: f64 = dep
                .aps
                .iter()
                .zip(measured_rss)
                .map(|(ap, &rss)| {
                    let d = ap.pose.center.distance(p).max(0.5);
                    let e = rss - model.predict(d);
                    e * e
                })
                .sum();
            if cost < best_cost {
                best_cost = cost;
                best = p;
            }
        }
    }
    best
}

/// A RADAR-style RSS fingerprint database.
#[derive(Clone, Debug)]
pub struct FingerprintDb {
    /// Training positions.
    positions: Vec<Point>,
    /// RSS vector (one entry per AP) at each training position.
    fingerprints: Vec<Vec<f64>>,
}

impl FingerprintDb {
    /// Builds the database by war-walking a `grid_step` training grid
    /// (this is exactly the "large amounts of calibration" the paper holds
    /// against map-based systems).
    pub fn build(dep: &Deployment, cfg: &CaptureConfig, grid_step: f64) -> Self {
        let mut positions = Vec::new();
        let mut fingerprints = Vec::new();
        let (w, h) = (crate::office::WIDTH, crate::office::DEPTH);
        let nx = (w / grid_step) as usize;
        let ny = (h / grid_step) as usize;
        for iy in 1..=ny {
            for ix in 1..=nx {
                let p = pt(
                    ix as f64 * grid_step - grid_step / 2.0,
                    iy as f64 * grid_step - grid_step / 2.0,
                );
                if p.x >= w || p.y >= h {
                    continue;
                }
                positions.push(p);
                fingerprints.push((0..dep.aps.len()).map(|i| dep.rss_db(i, p, cfg)).collect());
            }
        }
        Self {
            positions,
            fingerprints,
        }
    }

    /// Number of training points.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Nearest-neighbor lookup in signal space; `k` neighbors are averaged
    /// (RADAR uses k-NN with small k).
    pub fn localize(&self, measured_rss: &[f64], k: usize) -> Point {
        assert!(!self.is_empty(), "empty fingerprint database");
        let k = k.max(1).min(self.len());
        let mut scored: Vec<(f64, usize)> = self
            .fingerprints
            .iter()
            .enumerate()
            .map(|(i, fp)| {
                let d2: f64 = fp
                    .iter()
                    .zip(measured_rss)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                (d2, i)
            })
            .collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
        let mut acc = pt(0.0, 0.0);
        for &(_, i) in scored.iter().take(k) {
            acc = acc.add(self.positions[i]);
        }
        acc.scale(1.0 / k as f64)
    }
}

/// Measures a client's RSS vector with per-reading Gaussian noise of
/// `sigma_db` (shadowing + device variation), quantized to whole dB.
pub fn measure_rss<R: Rng>(
    dep: &Deployment,
    position: Point,
    cfg: &CaptureConfig,
    sigma_db: f64,
    rng: &mut R,
) -> Vec<f64> {
    (0..dep.aps.len())
        .map(|i| {
            let clean = dep.rss_db(i, position, cfg);
            let u1: f64 = 1.0 - rng.gen::<f64>();
            let u2: f64 = rng.gen();
            let gauss = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            (clean + gauss * sigma_db).round()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn log_distance_fit_recovers_exponent() {
        // Synthetic data from a known model: rss = -30 - 10·2.2·log10(d).
        let samples: Vec<(f64, f64)> = (1..20)
            .map(|i| {
                let d = i as f64;
                (d, -30.0 - 22.0 * d.log10())
            })
            .collect();
        let m = LogDistanceModel::fit(&samples);
        assert!((m.exponent - 2.2).abs() < 0.01, "{}", m.exponent);
        assert!((m.rss0 + 30.0).abs() < 0.1, "{}", m.rss0);
        assert!((m.predict(10.0) - (-52.0)).abs() < 0.1);
    }

    #[test]
    fn free_space_fit_is_near_exponent_two() {
        let dep = Deployment::free_space(1);
        let cfg = CaptureConfig::default();
        let m = fit_path_loss(&dep, &cfg);
        assert!((m.exponent - 2.0).abs() < 0.3, "exponent {}", m.exponent);
    }

    #[test]
    fn trilateration_finds_free_space_client_roughly() {
        let dep = Deployment::free_space(2);
        let cfg = CaptureConfig::default();
        let model = fit_path_loss(&dep, &cfg);
        let client = pt(20.0, 12.0);
        let rss: Vec<f64> = (0..6).map(|i| dep.rss_db(i, client, &cfg)).collect();
        let est = trilaterate(&dep, &model, &rss, 0.5);
        // Whole-dB quantization alone already costs meters of accuracy.
        assert!(est.distance(client) < 4.0, "error {}", est.distance(client));
    }

    #[test]
    fn fingerprint_db_localizes_training_point_exactly() {
        let dep = Deployment::office(3);
        let cfg = CaptureConfig::default();
        let db = FingerprintDb::build(&dep, &cfg, 4.0);
        assert!(db.len() > 50);
        // Query with a noiseless fingerprint of a training point.
        let target = pt(10.0, 10.0); // grid point for step 4.0
        let rss: Vec<f64> = (0..6).map(|i| dep.rss_db(i, target, &cfg)).collect();
        let est = db.localize(&rss, 1);
        assert!(est.distance(target) < 3.0, "error {}", est.distance(target));
    }

    #[test]
    fn measured_rss_is_noisy_but_close() {
        let dep = Deployment::free_space(4);
        let cfg = CaptureConfig::default();
        let mut rng = StdRng::seed_from_u64(5);
        let p = pt(15.0, 9.0);
        let noisy = measure_rss(&dep, p, &cfg, 2.0, &mut rng);
        for (i, r) in noisy.iter().enumerate() {
            let clean = dep.rss_db(i, p, &cfg);
            assert!((r - clean).abs() < 10.0, "ap {i}: {r} vs {clean}");
            assert_eq!(*r, r.round());
        }
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn fit_needs_samples() {
        LogDistanceModel::fit(&[(1.0, -30.0)]);
    }
}
