//! A deployed testbed: floorplan + APs (with simulated radio hardware and
//! calibration) + clients, and the frame-capture path experiments share.
//!
//! Reproduces the paper's experimental methodology (§4): each AP is an
//! 8-antenna λ/2 ULA (plus the off-row element) on simulated WARP radios
//! with unknown oscillator offsets, calibrated once with the CW-tone rig;
//! clients transmit 802.11 preambles; APs capture 10-sample snapshot
//! blocks via diversity synthesis across the two long training symbols.

use at_channel::geometry::Point;
use at_channel::{AntennaArray, ChannelSim, Floorplan, Transmitter};
use at_core::synthesis::{ApPose, SearchRegion};
use at_dsp::awgn::NoiseSource;
use at_dsp::preamble::{Preamble, LONG_SYMBOL_S, LTS0_START_S, LTS1_START_S};
use at_dsp::SnapshotBlock;
use at_frontend::{Calibration, CalibrationRig, FrontEnd};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Capture settings shared by the experiments.
#[derive(Clone, Copy, Debug)]
pub struct CaptureConfig {
    /// Snapshots per AoA spectrum (paper default: 10, §4.3.3).
    pub snapshots: usize,
    /// In-row antennas per AP.
    pub elements: usize,
    /// Capture the off-row antenna too (required for symmetry removal).
    pub offrow: bool,
    /// Receiver noise power per sample (sets the physical SNR together
    /// with distance; 1e-10 yields ≈ 30 dB at 10 m free space).
    pub noise_power: f64,
    /// Client transmit amplitude.
    pub tx_amplitude: f64,
    /// Estimate the client's carrier frequency offset from the two long
    /// training symbols and de-rotate the diversity-synthesized lower set
    /// (required for correctness whenever clients have realistic CFO;
    /// disable only to demonstrate the failure mode).
    pub cfo_correction: bool,
}

impl Default for CaptureConfig {
    fn default() -> Self {
        Self {
            snapshots: 10,
            elements: 8,
            offrow: true,
            noise_power: 1e-10,
            tx_amplitude: 1.0,
            cfo_correction: true,
        }
    }
}

/// One AP of the deployment: pose, array, and (calibrated) radio hardware.
#[derive(Clone, Debug)]
pub struct Ap {
    /// Array pose in the floorplan.
    pub pose: ApPose,
    /// Simulated radio front end with oscillator offsets.
    pub frontend: FrontEnd,
    /// Calibration recovered by the CW-tone rig at deploy time.
    pub calibration: Calibration,
    /// Seed for this AP's static antenna-element imperfections (mutual
    /// coupling / pattern / placement errors that the CW-tone calibration
    /// cannot see — §4.2.1's residual error sources).
    pub imperfection_seed: u64,
}

impl Ap {
    /// The antenna array geometry for a given capture configuration.
    pub fn array(&self, cfg: &CaptureConfig) -> AntennaArray {
        let a = AntennaArray::ula(self.pose.center, self.pose.axis_angle, cfg.elements)
            .with_imperfections(self.imperfection_seed);
        if cfg.offrow {
            a.with_offrow_element()
        } else {
            a
        }
    }
}

/// The full deployed testbed.
#[derive(Clone, Debug)]
pub struct Deployment {
    /// The office floorplan.
    pub floorplan: Floorplan,
    /// Deployed APs.
    pub aps: Vec<Ap>,
    /// Client ground-truth positions.
    pub clients: Vec<Point>,
}

impl Deployment {
    /// Deploys the paper's office testbed: 6 APs, 41 clients, with each
    /// AP's radios calibrated via the two-pass CW rig.
    pub fn office(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let aps = crate::office::ap_poses()
            .into_iter()
            .enumerate()
            .map(|(i, (center, axis_angle))| {
                let frontend = FrontEnd::new(8, seed ^ (0xA9_00 + i as u64));
                let rig = CalibrationRig::new(8, 0.3, seed ^ (0xCA_11 + i as u64));
                let calibration = rig.calibrate(&frontend, &mut rng);
                Ap {
                    pose: ApPose { center, axis_angle },
                    frontend,
                    calibration,
                    imperfection_seed: seed ^ (0xE1E0 + i as u64),
                }
            })
            .collect();
        Self {
            floorplan: crate::office::office_floorplan(),
            aps,
            clients: crate::office::client_positions(),
        }
    }

    /// Deploys the secondary research-lab testbed: 4 APs, 12 clients, same
    /// hardware pipeline — the generalization check that nothing is tuned
    /// to the office floorplan.
    pub fn lab(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let aps = crate::office::lab_ap_poses()
            .into_iter()
            .enumerate()
            .map(|(i, (center, axis_angle))| {
                let frontend = FrontEnd::new(8, seed ^ (0x1AB00 + i as u64));
                let rig = CalibrationRig::new(8, 0.3, seed ^ (0x1AB11 + i as u64));
                let calibration = rig.calibrate(&frontend, &mut rng);
                Ap {
                    pose: ApPose { center, axis_angle },
                    frontend,
                    calibration,
                    imperfection_seed: seed ^ (0x1ABE0 + i as u64),
                }
            })
            .collect();
        Self {
            floorplan: crate::office::lab_floorplan(),
            aps,
            clients: crate::office::lab_client_positions(),
        }
    }

    /// A free-space deployment (no walls) with the same AP/client layout —
    /// the control condition for tests.
    pub fn free_space(seed: u64) -> Self {
        let mut d = Self::office(seed);
        d.floorplan = Floorplan::empty();
        d
    }

    /// The search region covering this deployment's floorplan (falling
    /// back to the office extent for free-space controls), at the paper's
    /// 10 cm pitch.
    pub fn search_region(&self) -> SearchRegion {
        let (lo, hi) = self.floorplan.bounds().unwrap_or((
            at_channel::geometry::pt(0.0, 0.0),
            at_channel::geometry::pt(crate::office::WIDTH, crate::office::DEPTH),
        ));
        SearchRegion::new(lo, hi)
    }

    /// Captures one frame from a client at `position` as seen by AP
    /// `ap_idx`: channel propagation of the genuine preamble, AWGN, WARP
    /// diversity capture across `S0`/`S1`, and calibration correction.
    ///
    /// Rows of the returned block: `elements` in-row antennas, then (if
    /// configured) the off-row antenna.
    pub fn capture_frame<R: Rng>(
        &self,
        ap_idx: usize,
        position: Point,
        tx: &Transmitter,
        cfg: &CaptureConfig,
        rng: &mut R,
    ) -> SnapshotBlock {
        let ap = &self.aps[ap_idx];
        self.capture_frame_with(
            ap_idx,
            &ap.array(cfg),
            &ap.calibration,
            cfg.noise_power,
            position,
            tx,
            cfg,
            rng,
        )
    }

    /// [`Deployment::capture_frame`] with the AP's hardware state made
    /// explicit — the hook the fault-injection layer ([`crate::acquire`])
    /// uses to substitute an impaired array, a drifted calibration table,
    /// or a spiked noise floor. Passing the AP's own array, calibration
    /// and `cfg.noise_power` reproduces `capture_frame` exactly.
    #[allow(clippy::too_many_arguments)]
    pub fn capture_frame_with<R: Rng>(
        &self,
        ap_idx: usize,
        array: &AntennaArray,
        calibration: &Calibration,
        noise_power: f64,
        position: Point,
        tx: &Transmitter,
        cfg: &CaptureConfig,
        rng: &mut R,
    ) -> SnapshotBlock {
        let _t = at_obs::time_stage!(at_obs::stages::CAPTURE, "ap" => ap_idx);
        let ap = &self.aps[ap_idx];
        let sim = ChannelSim::new(&self.floorplan);
        let preamble = Preamble::new();
        let tx = Transmitter {
            position,
            amplitude: tx.amplitude * cfg.tx_amplitude,
            ..*tx
        };

        // Stream window covering both long training symbols. The channel's
        // propagation delay (< 0.2 µs here) stays inside the window because
        // diversity capture skips the first `switch_samples` anyway.
        let fs = ap.frontend.sample_rate;
        let t0 = LTS0_START_S;
        let duration = (LTS1_START_S - LTS0_START_S) + LONG_SYMBOL_S;
        let mut streams = sim.receive(&tx, array, |t| preamble.eval(t), t0, duration, fs);

        // Receiver noise.
        let noise = NoiseSource::with_power(noise_power);
        for s in &mut streams {
            noise.corrupt(s, rng);
        }

        let lts1_offset = ((LTS1_START_S - LTS0_START_S) * fs).round() as usize;
        let radios = ap.frontend.radios();
        assert!(
            cfg.elements + usize::from(cfg.offrow) <= 2 * radios,
            "{} antennas exceed two ports per radio",
            cfg.elements
        );
        let (block, _ants) = if cfg.elements > radios {
            // The paper's 16-antenna mode (§3 footnote 3): each radio's two
            // ports carry two in-row antennas, synthesized across S0/S1.
            assert!(
                !cfg.offrow,
                "all ports are occupied by in-row antennas in 16-antenna mode"
            );
            let port_a: Vec<Option<usize>> = (0..radios).map(Some).collect();
            let port_b: Vec<Option<usize>> = (0..radios)
                .map(|r| (radios + r < cfg.elements).then_some(radios + r))
                .collect();
            let cfo = if cfg.cfo_correction {
                let delta = ap.frontend.switch_samples();
                let w = 32.min(lts1_offset - delta);
                at_dsp::estimate_cfo(
                    &streams[0][delta..delta + w],
                    &streams[0][lts1_offset + delta..lts1_offset + delta + w],
                    lts1_offset as f64 / fs,
                )
                .unwrap_or(0.0)
            } else {
                0.0
            };
            ap.frontend.diversity_capture_cfo(
                &streams,
                &port_a,
                &port_b,
                0,
                lts1_offset,
                cfg.snapshots,
                cfo,
            )
        } else if cfg.offrow {
            // Radio r's port A carries in-row antenna r (for r < elements);
            // the off-row antenna rides radio 0's port B.
            let radios = ap.frontend.radios();
            let port_a: Vec<Option<usize>> = (0..radios)
                .map(|r| (r < cfg.elements).then_some(r))
                .collect();
            let mut port_b = vec![None; radios];
            port_b[0] = Some(cfg.elements); // off-row antenna on radio 0 port B
                                            // Fine CFO estimate from antenna 0's two LTS copies, exactly
                                            // as a real receiver would, then de-rotate the S1 captures.
            let cfo = if cfg.cfo_correction {
                let delta = ap.frontend.switch_samples();
                let w = 32.min(lts1_offset - delta);
                at_dsp::estimate_cfo(
                    &streams[0][delta..delta + w],
                    &streams[0][lts1_offset + delta..lts1_offset + delta + w],
                    lts1_offset as f64 / fs,
                )
                .unwrap_or(0.0)
            } else {
                0.0
            };
            ap.frontend.diversity_capture_cfo(
                &streams,
                &port_a,
                &port_b,
                0,
                lts1_offset,
                cfg.snapshots,
                cfo,
            )
        } else {
            let delta = ap.frontend.switch_samples();
            (
                ap.frontend
                    .capture(&streams[..cfg.elements], delta, cfg.snapshots),
                (0..cfg.elements).collect(),
            )
        };

        // Undo the oscillator offsets. Row m is radio m % radios (port A
        // for m < radios, port B above); the off-row row rode radio 0's
        // port B.
        let radios = ap.frontend.radios();
        let mut radio_of: Vec<usize> = (0..cfg.elements).map(|m| m % radios).collect();
        if cfg.offrow {
            radio_of.push(0);
        }
        calibration.apply(&block, &radio_of)
    }

    /// Captures a group of `frames` frames with ≤ 5 cm random client jitter
    /// between frames — the paper's semi-static setting (§4.2), which feeds
    /// multipath suppression.
    #[allow(clippy::too_many_arguments)]
    pub fn capture_frame_group<R: Rng>(
        &self,
        ap_idx: usize,
        position: Point,
        tx: &Transmitter,
        cfg: &CaptureConfig,
        frames: usize,
        jitter: f64,
        rng: &mut R,
    ) -> Vec<SnapshotBlock> {
        (0..frames)
            .map(|i| {
                let p = if i == 0 {
                    position
                } else {
                    let ang = rng.gen_range(0.0..std::f64::consts::TAU);
                    let r = rng.gen_range(0.0..jitter);
                    at_channel::geometry::pt(position.x + r * ang.cos(), position.y + r * ang.sin())
                };
                self.capture_frame(ap_idx, p, tx, cfg, rng)
            })
            .collect()
    }

    /// Received signal strength at an AP from a client position, in dB
    /// relative to unit transmit power, quantized to whole decibels like
    /// commodity hardware reports it (§5: "usually measured in units of
    /// whole decibels") — the input to the RSSI baselines.
    pub fn rss_db(&self, ap_idx: usize, position: Point, cfg: &CaptureConfig) -> f64 {
        let ap = &self.aps[ap_idx];
        let array = ap.array(cfg);
        let sim = ChannelSim::new(&self.floorplan);
        let tx = Transmitter::at(position).with_amplitude(cfg.tx_amplitude);
        let p = sim.received_power(&tx, &array);
        (10.0 * p.log10()).round()
    }
}

/// The experiments' sweep parallelism, now shared with the localization
/// engine's heatmap fill: see `at_core::parallel` (lock-free chunked
/// partitioning; the old implementation here locked a `Mutex` per output
/// element).
pub use at_core::parallel::parallel_map;

#[cfg(test)]
mod tests {
    use super::*;
    use at_channel::geometry::pt;

    #[test]
    fn office_deployment_composition() {
        let d = Deployment::office(1);
        assert_eq!(d.aps.len(), 6);
        assert_eq!(d.clients.len(), 41);
        assert!(d.floorplan.walls().len() > 25);
    }

    #[test]
    fn capture_produces_expected_rows() {
        let d = Deployment::free_space(2);
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = CaptureConfig::default();
        let tx = Transmitter::at(pt(10.0, 10.0));
        let block = d.capture_frame(0, pt(10.0, 10.0), &tx, &cfg, &mut rng);
        assert_eq!(block.antennas(), 9);
        assert_eq!(block.snapshots(), 10);

        let cfg_inrow = CaptureConfig {
            offrow: false,
            ..cfg
        };
        let block = d.capture_frame(0, pt(10.0, 10.0), &tx, &cfg_inrow, &mut rng);
        assert_eq!(block.antennas(), 8);
    }

    #[test]
    fn sixteen_antenna_capture_works() {
        let d = Deployment::free_space(31);
        let cfg = CaptureConfig {
            elements: 16,
            offrow: false,
            ..CaptureConfig::default()
        };
        let client = pt(20.0, 12.0);
        let mut rng = StdRng::seed_from_u64(17);
        let tx = Transmitter::at(client);
        let block = d.capture_frame(0, client, &tx, &cfg, &mut rng);
        assert_eq!(block.antennas(), 16);
        // The synthesized 16-element block still carries a clean bearing.
        use at_core::music::{music_spectrum, strongest_bearing, MusicConfig};
        let spec = music_spectrum(&block, &MusicConfig::default());
        let truth = d.aps[0].pose.bearing_to(client);
        let best = strongest_bearing(&spec).unwrap();
        let err = at_channel::geometry::angle_diff(best, truth).min(
            at_channel::geometry::angle_diff(best, std::f64::consts::TAU - truth),
        );
        assert!(err < 2f64.to_radians(), "16-antenna bearing error {err}");
    }

    #[test]
    #[should_panic(expected = "exceed two ports")]
    fn too_many_antennas_rejected() {
        let d = Deployment::free_space(32);
        let cfg = CaptureConfig {
            elements: 17,
            offrow: false,
            ..CaptureConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let tx = Transmitter::at(pt(10.0, 10.0));
        let _ = d.capture_frame(0, pt(10.0, 10.0), &tx, &cfg, &mut rng);
    }

    #[test]
    fn capture_is_deterministic_given_rng() {
        let d = Deployment::office(7);
        let cfg = CaptureConfig::default();
        let tx = Transmitter::at(pt(20.0, 12.0));
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        let b1 = d.capture_frame(2, pt(20.0, 12.0), &tx, &cfg, &mut r1);
        let b2 = d.capture_frame(2, pt(20.0, 12.0), &tx, &cfg, &mut r2);
        for m in 0..b1.antennas() {
            for (x, y) in b1.stream(m).iter().zip(b2.stream(m)) {
                assert_eq!(*x, *y);
            }
        }
    }

    #[test]
    fn calibrated_capture_localizes_in_free_space() {
        // End-to-end sanity: despite random radio offsets, calibration
        // makes the full pipeline recover the client bearing.
        use at_core::pipeline::{process_frame, ApPipelineConfig};
        let d = Deployment::free_space(11);
        let cfg = CaptureConfig::default();
        let client = pt(20.0, 12.0);
        let mut rng = StdRng::seed_from_u64(5);
        let tx = Transmitter::at(client);
        let block = d.capture_frame(0, client, &tx, &cfg, &mut rng);
        let spec = process_frame(&block, &ApPipelineConfig::arraytrack(8));
        let truth = d.aps[0].pose.bearing_to(client);
        let peak = spec.find_peaks(0.3)[0];
        assert!(
            at_channel::geometry::angle_diff(peak.theta, truth) < 4f64.to_radians(),
            "peak {} vs truth {truth}",
            peak.theta
        );
    }

    #[test]
    fn frame_group_jitters_positions() {
        let d = Deployment::free_space(13);
        let cfg = CaptureConfig::default();
        let mut rng = StdRng::seed_from_u64(17);
        let tx = Transmitter::at(pt(10.0, 10.0));
        let blocks = d.capture_frame_group(0, pt(10.0, 10.0), &tx, &cfg, 3, 0.05, &mut rng);
        assert_eq!(blocks.len(), 3);
        // Jittered frames differ from the first.
        let differs =
            (0..blocks[0].antennas()).any(|m| blocks[0].stream(m)[0] != blocks[1].stream(m)[0]);
        assert!(differs);
    }

    #[test]
    fn rss_decreases_with_distance_and_is_quantized() {
        let d = Deployment::free_space(19);
        let cfg = CaptureConfig::default();
        let near = d.rss_db(0, pt(8.0, 21.0), &cfg);
        let far = d.rss_db(0, pt(46.0, 2.0), &cfg);
        assert!(near > far, "near {near} dB vs far {far} dB");
        assert_eq!(near, near.round());
    }

    #[test]
    fn parallel_map_matches_serial() {
        let items: Vec<u64> = (0..100).collect();
        let par = parallel_map(&items, 8, |i, x| i as u64 + x * 2);
        let ser: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, x)| i as u64 + x * 2)
            .collect();
        assert_eq!(par, ser);
    }
}
