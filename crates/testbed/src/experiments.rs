//! Shared experiment machinery: per-client spectra, AP-subset sweeps, and
//! the localization loops behind Figures 13, 15, 16 and 18.
//!
//! The paper's methodology (§4): one physical AP was moved between six
//! positions, so localization error is reported "across all different AP
//! combinations and all 41 clients". We reproduce that by computing one
//! spectrum per (client, AP) pair and then fusing every AP subset of the
//! requested sizes.

use crate::deployment::{parallel_map, CaptureConfig, Deployment};
use crate::metrics::ErrorStats;
use at_channel::geometry::Point;
use at_channel::Transmitter;
use at_core::engine::LocalizationEngine;
use at_core::pipeline::{process_frame_group, ApPipelineConfig};
use at_core::suppression::SuppressionConfig;
use at_core::synthesis::{localize, ApObservation, ApPose, SearchRegion};
use at_core::AoaSpectrum;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Full experiment configuration.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentConfig {
    /// Capture settings (snapshots, noise, antennas).
    pub capture: CaptureConfig,
    /// Per-AP pipeline settings (weighting/symmetry/MUSIC).
    pub pipeline: ApPipelineConfig,
    /// Frames per (client, AP): 1 = static (Fig. 13), ≥2 enables multipath
    /// suppression (Fig. 15's semi-static data uses 3).
    pub frames: usize,
    /// Client movement between frames, meters (paper: < 5 cm).
    pub jitter: f64,
    /// Localization grid pitch, meters (paper: 0.1; coarser is faster and
    /// hill climbing recovers the difference).
    pub grid_step: f64,
    /// Transmitter template (height/polarization knobs for Fig. 18).
    pub tx: Transmitter,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads for the sweep.
    pub threads: usize,
}

impl ExperimentConfig {
    /// The paper's full-pipeline configuration.
    pub fn arraytrack(seed: u64) -> Self {
        Self {
            capture: CaptureConfig::default(),
            pipeline: ApPipelineConfig::arraytrack(8),
            frames: 3,
            jitter: 0.05,
            grid_step: 0.2,
            tx: Transmitter::at(at_channel::geometry::pt(0.0, 0.0)),
            seed,
            threads: default_threads(),
        }
    }

    /// The unoptimized raw-spectrum configuration (Fig. 13 / the
    /// "(without optimization)" curves).
    pub fn unoptimized(seed: u64) -> Self {
        let mut cfg = Self::arraytrack(seed);
        cfg.pipeline = ApPipelineConfig::unoptimized(8);
        cfg.capture.offrow = false;
        cfg.frames = 1;
        cfg
    }
}

/// Picks a sensible worker count.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Computes the processed AoA spectrum for every (client, AP) pair:
/// `result[client][ap]`.
pub fn compute_all_spectra(dep: &Deployment, cfg: &ExperimentConfig) -> Vec<Vec<AoaSpectrum>> {
    let clients = dep.clients.clone();
    parallel_map(&clients, cfg.threads, |ci, &client| {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ (1000 + ci as u64));
        (0..dep.aps.len())
            .map(|ap| compute_spectrum(dep, ap, client, cfg, &mut rng))
            .collect()
    })
}

/// Computes one client's processed spectrum at one AP.
pub fn compute_spectrum<R: rand::Rng>(
    dep: &Deployment,
    ap_idx: usize,
    client: Point,
    cfg: &ExperimentConfig,
    rng: &mut R,
) -> AoaSpectrum {
    let tx = Transmitter {
        position: client,
        ..cfg.tx
    };
    let blocks = dep.capture_frame_group(
        ap_idx,
        client,
        &tx,
        &cfg.capture,
        cfg.frames,
        cfg.jitter,
        rng,
    );
    process_frame_group(&blocks, &cfg.pipeline, &SuppressionConfig::default())
}

/// All `k`-element subsets of `0..n` (the AP combinations of §4.1).
pub fn ap_subsets(n: usize, k: usize) -> Vec<Vec<usize>> {
    fn rec(start: usize, n: usize, k: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        for i in start..n {
            cur.push(i);
            rec(i + 1, n, k, cur, out);
            cur.pop();
        }
    }
    let mut out = Vec::new();
    rec(0, n, k, &mut Vec::new(), &mut out);
    out
}

/// Builds the reusable localization engine for a deployment at the given
/// grid pitch: every (client, AP-subset) query of a sweep shares one set of
/// precomputed bearing grids.
pub fn localization_engine(dep: &Deployment, grid_step: f64, bins: usize) -> LocalizationEngine {
    let poses: Vec<ApPose> = dep.aps.iter().map(|ap| ap.pose).collect();
    let region = dep.search_region().with_resolution(grid_step);
    LocalizationEngine::new(&poses, region, bins)
}

/// Localizes one client from a subset of its per-AP spectra.
///
/// This is the exhaustive reference path; the sweeps go through
/// [`localization_engine`] instead (same result, precomputed geometry).
pub fn localize_subset(
    dep: &Deployment,
    spectra: &[AoaSpectrum],
    subset: &[usize],
    region: SearchRegion,
) -> Point {
    let obs: Vec<ApObservation> = subset
        .iter()
        .map(|&ap| ApObservation {
            pose: dep.aps[ap].pose,
            spectrum: spectra[ap].clone(),
        })
        .collect();
    localize(&obs, region).position
}

/// Runs the full localization sweep: for each subset size in `sizes`,
/// localizes every client with every AP subset of that size and collects
/// the error distribution. This is the engine behind Figs. 13 and 15.
pub fn localization_sweep(
    dep: &Deployment,
    spectra: &[Vec<AoaSpectrum>],
    sizes: &[usize],
    grid_step: f64,
    threads: usize,
) -> BTreeMap<usize, ErrorStats> {
    let bins = spectra
        .first()
        .and_then(|s| s.first())
        .map_or(720, AoaSpectrum::bins);
    // The static geometry work (bearings from every AP to every grid cell)
    // is shared by all (client, subset) queries of the sweep.
    let engine = localization_engine(dep, grid_step, bins);
    let mut out = BTreeMap::new();
    for &k in sizes {
        let subsets = ap_subsets(dep.aps.len(), k);
        // One work item per (client, subset).
        let work: Vec<(usize, &Vec<usize>)> = (0..dep.clients.len())
            .flat_map(|ci| subsets.iter().map(move |s| (ci, s)))
            .collect();
        let errors = parallel_map(&work, threads, |_, &(ci, subset)| {
            let obs: Vec<(usize, &AoaSpectrum)> =
                subset.iter().map(|&ap| (ap, &spectra[ci][ap])).collect();
            let est = engine.localize(&obs).position;
            est.distance(dep.clients[ci])
        });
        out.insert(k, ErrorStats::new(errors));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_channel::geometry::pt;

    #[test]
    fn subsets_counted_correctly() {
        assert_eq!(ap_subsets(6, 3).len(), 20);
        assert_eq!(ap_subsets(6, 4).len(), 15);
        assert_eq!(ap_subsets(6, 5).len(), 6);
        assert_eq!(ap_subsets(6, 6).len(), 1);
        assert_eq!(ap_subsets(4, 1), vec![vec![0], vec![1], vec![2], vec![3]]);
        // Subsets are sorted and unique.
        for s in ap_subsets(6, 3) {
            assert!(s.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn free_space_client_localized_accurately() {
        let dep = Deployment::free_space(21);
        let mut cfg = ExperimentConfig::arraytrack(21);
        cfg.frames = 1; // free space: no multipath to suppress
        let client = pt(22.0, 13.0);
        let mut rng = StdRng::seed_from_u64(100);
        let spectra: Vec<AoaSpectrum> = (0..6)
            .map(|ap| compute_spectrum(&dep, ap, client, &cfg, &mut rng))
            .collect();
        let region = dep.search_region().with_resolution(0.2);
        let est = localize_subset(&dep, &spectra, &[0, 1, 2, 3, 4, 5], region);
        assert!(
            est.distance(client) < 0.3,
            "free-space 6-AP error {}",
            est.distance(client)
        );
    }

    #[test]
    fn engine_sweep_matches_reference_localization() {
        // The engine path the sweeps use must agree with the exhaustive
        // reference on real captured spectra, for every subset shape.
        let dep = Deployment::free_space(29);
        let mut cfg = ExperimentConfig::arraytrack(29);
        cfg.frames = 1;
        let client = pt(18.0, 9.0);
        let mut rng = StdRng::seed_from_u64(300);
        let spectra: Vec<AoaSpectrum> = (0..6)
            .map(|ap| compute_spectrum(&dep, ap, client, &cfg, &mut rng))
            .collect();
        let region = dep.search_region().with_resolution(0.2);
        let engine = localization_engine(&dep, 0.2, 720);
        for subset in [vec![0usize, 1, 2], vec![0, 2, 4, 5], vec![0, 1, 2, 3, 4, 5]] {
            let legacy = localize_subset(&dep, &spectra, &subset, region);
            let obs: Vec<(usize, &AoaSpectrum)> =
                subset.iter().map(|&ap| (ap, &spectra[ap])).collect();
            let fast = engine.localize(&obs).position;
            assert!(
                fast.distance(legacy) < 1e-3,
                "subset {subset:?}: engine {fast:?} vs reference {legacy:?}"
            );
        }
    }

    #[test]
    fn office_client_localized_with_office_accuracy() {
        // One in-office client end-to-end; looser bound than free space,
        // but must land in the right neighborhood (the full-population
        // statistics are exercised by the fig13/fig15 experiment binaries).
        let dep = Deployment::office(23);
        let cfg = ExperimentConfig::arraytrack(23);
        let client = dep.clients[4];
        let mut rng = StdRng::seed_from_u64(200);
        let spectra: Vec<AoaSpectrum> = (0..6)
            .map(|ap| compute_spectrum(&dep, ap, client, &cfg, &mut rng))
            .collect();
        let region = dep.search_region().with_resolution(0.2);
        let est = localize_subset(&dep, &spectra, &[0, 1, 2, 3, 4, 5], region);
        assert!(
            est.distance(client) < 2.0,
            "office 6-AP error {}",
            est.distance(client)
        );
    }
}
