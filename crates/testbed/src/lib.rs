//! # at-testbed — the simulated 41-client / 6-AP office deployment
//!
//! The experimental apparatus of the paper's §4, rebuilt in simulation:
//!
//! - [`office`]: the Fig. 12 floorplan (concrete shell, drywall offices,
//!   glass conference room, metal elevator core, two pillars), the six AP
//!   poses, and the 41 client ground-truth positions;
//! - [`deployment`]: APs with simulated WARP front ends, per-AP CW-tone
//!   calibration, frame capture via diversity synthesis, and RSS readings;
//! - [`experiments`]: the sweep engine — per-(client, AP) spectra, AP
//!   subset enumeration, and the localization loops behind Figs. 13–18;
//! - [`metrics`]: error CDFs, medians, means, percentiles;
//! - [`baselines`]: RSSI log-distance trilateration and RADAR-style
//!   fingerprinting for the related-work comparison;
//! - [`stream`]: the live Figure-1 loop — frames arriving over time, per-AP
//!   circular buffers, 100 ms grouping, suppression, fusion and tracking;
//! - [`acquire`]: the same capture path run under an injected
//!   `at_core::faults::FaultPlan`, with retry/timeout semantics and typed
//!   errors — the apparatus behind the robustness tier and the Fig. 14-style
//!   accuracy-vs-failures curves;
//! - [`serve`]: the wire bridge — build an `at-serve` location service
//!   from a deployment and push captured spectra to it over TCP;
//! - [`replay`]: the golden capture-and-replay scenario — a scripted
//!   office session recorded into an `at-replay` journal, behind the
//!   committed bit-exact regression fixture.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acquire;
pub mod baselines;
pub mod deployment;
pub mod experiments;
pub mod metrics;
pub mod office;
pub mod replay;
pub mod serve;
pub mod stream;

pub use acquire::{
    acquire_spectrum, localize_under_faults, AcquireConfig, AcquireError, Acquisition,
};
pub use deployment::{parallel_map, Ap, CaptureConfig, Deployment};
pub use experiments::{
    ap_subsets, compute_all_spectra, compute_spectrum, localization_sweep, localize_subset,
    ExperimentConfig,
};
pub use metrics::ErrorStats;
pub use replay::{record_golden, GOLDEN_SEED};
pub use serve::{
    ap_clients, serve_deployment, service_config, submit_position, submit_position_keyed,
};
pub use stream::{run_stream, FixEvent, StreamClient, StreamConfig, StreamReport};
