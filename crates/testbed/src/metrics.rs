//! Localization error statistics: medians, means, percentiles, CDFs.
//!
//! The paper reports error distributions across clients and AP subsets as
//! CDFs (Figs. 13, 15, 16, 18) with headline medians/means; this module is
//! the single implementation all experiments share.

/// An empirical error distribution (meters).
#[derive(Clone, Debug, Default)]
pub struct ErrorStats {
    sorted: Vec<f64>,
}

impl ErrorStats {
    /// Builds statistics from raw error samples.
    ///
    /// # Panics
    /// Panics on NaN samples.
    pub fn new(mut errors: Vec<f64>) -> Self {
        assert!(
            errors.iter().all(|e| !e.is_nan()),
            "error samples must not be NaN"
        );
        errors.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs after check"));
        Self { sorted: errors }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the distribution is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Arithmetic mean; 0 for empty input.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Linear-interpolated percentile, `p ∈ [0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        match self.sorted.len() {
            0 => 0.0,
            1 => self.sorted[0],
            n => {
                let rank = p / 100.0 * (n - 1) as f64;
                let lo = rank.floor() as usize;
                let hi = rank.ceil() as usize;
                let frac = rank - lo as f64;
                self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
            }
        }
    }

    /// Fraction of samples ≤ `x` (the empirical CDF).
    pub fn cdf_at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&e| e <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// `(error, cumulative fraction)` pairs for plotting the CDF.
    pub fn cdf_points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &e)| (e, (i + 1) as f64 / n as f64))
            .collect()
    }

    /// Formats the headline numbers the paper quotes.
    pub fn summary(&self) -> String {
        format!(
            "n={} median={:.3} m mean={:.3} m p90={:.3} m p95={:.3} m p98={:.3} m",
            self.len(),
            self.median(),
            self.mean(),
            self.percentile(90.0),
            self.percentile(95.0),
            self.percentile(98.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statistics() {
        let s = ErrorStats::new(vec![3.0, 1.0, 2.0, 4.0, 5.0]);
        assert_eq!(s.len(), 5);
        assert_eq!(s.median(), 3.0);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 5.0);
        assert_eq!(s.percentile(25.0), 2.0);
    }

    #[test]
    fn percentile_interpolates() {
        let s = ErrorStats::new(vec![0.0, 1.0]);
        assert!((s.percentile(50.0) - 0.5).abs() < 1e-12);
        assert!((s.percentile(75.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let s = ErrorStats::new(vec![0.2, 0.5, 0.5, 1.0, 2.0]);
        assert_eq!(s.cdf_at(-1.0), 0.0);
        assert_eq!(s.cdf_at(0.5), 0.6);
        assert_eq!(s.cdf_at(10.0), 1.0);
        let pts = s.cdf_points();
        assert_eq!(pts.len(), 5);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn empty_and_singleton() {
        let empty = ErrorStats::new(vec![]);
        assert!(empty.is_empty());
        assert_eq!(empty.median(), 0.0);
        assert_eq!(empty.cdf_at(1.0), 0.0);
        let one = ErrorStats::new(vec![0.42]);
        assert_eq!(one.median(), 0.42);
        assert_eq!(one.percentile(99.0), 0.42);
    }

    #[test]
    fn summary_contains_headline_numbers() {
        let s = ErrorStats::new(vec![0.1, 0.2, 0.3]);
        let text = s.summary();
        assert!(text.contains("n=3"));
        assert!(text.contains("median=0.200"));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        ErrorStats::new(vec![1.0, f64::NAN]);
    }
}
