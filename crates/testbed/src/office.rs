//! The simulated office testbed, modeled on the paper's Figure 12.
//!
//! One floor of a busy office, ≈ 48 m × 24 m: concrete outer walls and
//! pillars, drywall office partitions along the top and bottom, a glass
//! conference room, a metal elevator core — "we put some clients near
//! metal, wood, glass and plastic walls to make our experiments more
//! comprehensive" (§4). Six AP positions ring the space like the labels
//! "1"–"6" in the figure; 41 clients are spread roughly uniformly,
//! including spots behind the pillars where the direct path is blocked.

use at_channel::geometry::{pt, seg, Point};
use at_channel::{Floorplan, Material, Pillar};

/// Width of the office floor in meters.
pub const WIDTH: f64 = 48.0;

/// Depth of the office floor in meters.
pub const DEPTH: f64 = 24.0;

/// Builds the office floorplan.
pub fn office_floorplan() -> Floorplan {
    let mut fp = Floorplan::empty()
        // Outer shell.
        .with_rect(pt(0.0, 0.0), pt(WIDTH, DEPTH), Material::CONCRETE);

    // Top row of offices: partitions every 6 m, 6 m deep.
    for i in 1..8 {
        let x = i as f64 * 6.0;
        fp.push_wall(at_channel::Wall {
            segment: seg(pt(x, 18.0), pt(x, 24.0)),
            material: Material::DRYWALL,
        });
    }
    // Corridor wall under the top offices, with door gaps.
    for i in 0..8 {
        let x0 = i as f64 * 6.0;
        fp.push_wall(at_channel::Wall {
            segment: seg(pt(x0 + 1.2, 18.0), pt(x0 + 6.0, 18.0)),
            material: Material::DRYWALL,
        });
    }

    // Bottom row of offices: partitions every 8 m, 5 m deep.
    for i in 1..6 {
        let x = i as f64 * 8.0;
        fp.push_wall(at_channel::Wall {
            segment: seg(pt(x, 0.0), pt(x, 5.0)),
            material: Material::DRYWALL,
        });
    }
    for i in 0..6 {
        let x0 = i as f64 * 8.0;
        fp.push_wall(at_channel::Wall {
            segment: seg(pt(x0 + 1.5, 5.0), pt(x0 + 8.0, 5.0)),
            material: Material::DRYWALL,
        });
    }

    // Glass conference room in the middle-left.
    fp.push_wall(at_channel::Wall {
        segment: seg(pt(8.0, 9.0), pt(16.0, 9.0)),
        material: Material::GLASS,
    });
    fp.push_wall(at_channel::Wall {
        segment: seg(pt(8.0, 14.0), pt(16.0, 14.0)),
        material: Material::GLASS,
    });
    fp.push_wall(at_channel::Wall {
        segment: seg(pt(8.0, 9.0), pt(8.0, 14.0)),
        material: Material::GLASS,
    });
    fp.push_wall(at_channel::Wall {
        segment: seg(pt(16.0, 9.0), pt(16.0, 12.0)),
        material: Material::GLASS,
    });

    // Metal elevator core right of center.
    fp.push_wall(at_channel::Wall {
        segment: seg(pt(26.0, 10.0), pt(29.0, 10.0)),
        material: Material::METAL,
    });
    fp.push_wall(at_channel::Wall {
        segment: seg(pt(26.0, 13.0), pt(29.0, 13.0)),
        material: Material::METAL,
    });
    fp.push_wall(at_channel::Wall {
        segment: seg(pt(29.0, 10.0), pt(29.0, 13.0)),
        material: Material::METAL,
    });

    // Wooden storage wall near the right side.
    fp.push_wall(at_channel::Wall {
        segment: seg(pt(38.0, 8.0), pt(38.0, 16.0)),
        material: Material::WOOD,
    });

    // Two structural concrete pillars (Fig. 17's blockers).
    fp = fp
        .with_pillar(Pillar::concrete(pt(18.0, 12.5), 0.35))
        .with_pillar(Pillar::concrete(pt(34.0, 12.5), 0.35));

    fp
}

/// The six AP poses of Fig. 12: `(array center, axis angle)`.
///
/// The paper's single AP rode a cart between the six spots, so array
/// orientations were arbitrary, not wall-aligned — which matters: a tilted
/// linear array's mirror ambiguity lands *inside* the building, producing
/// the false-positive ghost locations §4.2 describes (and that symmetry
/// removal fixes). We tilt each array 20–40° off its nearest wall to
/// reproduce that geometry.
pub fn ap_poses() -> [(Point, f64); 6] {
    use std::f64::consts::FRAC_PI_2;
    [
        (pt(6.0, 23.0), 0.55),             // 1: top-left, tilted off the wall
        (pt(30.0, 23.0), -0.45),           // 2: top-center-right
        (pt(47.0, 16.0), FRAC_PI_2 + 0.6), // 3: right wall
        (pt(40.0, 1.0), 0.35),             // 4: bottom-right
        (pt(14.0, 1.0), -0.5),             // 5: bottom-left
        (pt(1.0, 12.0), FRAC_PI_2 - 0.65), // 6: left wall
    ]
}

/// The 41 client ground-truth positions, spread roughly uniformly with
/// deliberately adversarial placements: near the metal core, inside the
/// glass room, behind both pillars, and deep inside offices.
pub fn client_positions() -> Vec<Point> {
    vec![
        // Corridor / open area sweep.
        pt(4.0, 12.0),
        pt(9.0, 16.5),
        pt(14.5, 16.0),
        pt(20.0, 16.5),
        pt(25.0, 16.0),
        pt(31.0, 16.5),
        pt(36.5, 16.0),
        pt(42.0, 16.5),
        pt(45.5, 12.0),
        pt(42.0, 7.0),
        pt(36.0, 6.5),
        pt(30.0, 7.0),
        pt(24.0, 6.5),
        pt(18.5, 7.0),
        pt(12.0, 6.5),
        pt(6.0, 7.0),
        // Inside top offices.
        pt(3.0, 21.0),
        pt(9.5, 21.5),
        pt(15.0, 20.5),
        pt(21.0, 21.5),
        pt(27.5, 20.5),
        pt(33.0, 21.5),
        pt(39.5, 20.5),
        pt(45.0, 21.0),
        // Inside bottom offices.
        pt(4.0, 2.5),
        pt(12.5, 3.0),
        pt(20.0, 2.5),
        pt(28.0, 3.0),
        pt(36.5, 2.5),
        pt(44.0, 3.0),
        // Glass conference room.
        pt(10.5, 11.5),
        pt(14.0, 12.5),
        // Near the metal elevator core.
        pt(25.0, 11.5),
        pt(30.5, 11.8),
        // Behind the pillars (blocked direct paths to some APs).
        pt(18.0, 11.0),
        pt(34.0, 11.0),
        pt(18.0, 14.0),
        // Near the wooden wall.
        pt(37.2, 12.0),
        pt(39.0, 10.0),
        // Awkward corners.
        pt(1.5, 1.5),
        pt(46.5, 22.5),
    ]
}

/// A second, differently-shaped deployment: a 20 m × 15 m research lab —
/// concrete shell, one long metal bench row, a glass machine room, denser
/// AP ring. Used by the generalization tests to show the pipeline is not
/// tuned to the Fig. 12 office.
pub fn lab_floorplan() -> Floorplan {
    // Interior lab: plasterboard shell (a small *concrete* box at 2.4 GHz
    // is an echo chamber whose wall bounces rival the direct path —
    // measurably harder than anything in the paper's testbed).
    let mut fp = Floorplan::empty().with_rect(pt(0.0, 0.0), pt(20.0, 15.0), Material::DRYWALL);
    // Metal bench row across the middle.
    fp.push_wall(at_channel::Wall {
        segment: seg(pt(3.0, 7.5), pt(13.0, 7.5)),
        material: Material::METAL,
    });
    // Glass machine room in a corner.
    fp.push_wall(at_channel::Wall {
        segment: seg(pt(14.0, 10.0), pt(20.0, 10.0)),
        material: Material::GLASS,
    });
    fp.push_wall(at_channel::Wall {
        segment: seg(pt(14.0, 10.0), pt(14.0, 15.0)),
        material: Material::GLASS,
    });
    // Two drywall partitions.
    fp.push_wall(at_channel::Wall {
        segment: seg(pt(6.0, 0.0), pt(6.0, 4.0)),
        material: Material::DRYWALL,
    });
    fp.push_wall(at_channel::Wall {
        segment: seg(pt(12.0, 11.0), pt(12.0, 15.0)),
        material: Material::DRYWALL,
    });
    fp.with_pillar(Pillar::concrete(pt(10.0, 11.0), 0.3))
}

/// Four AP poses for the lab, tilted off the walls like the office's.
pub fn lab_ap_poses() -> [(Point, f64); 4] {
    use std::f64::consts::FRAC_PI_2;
    [
        (pt(2.0, 14.0), -0.4),
        (pt(18.5, 13.5), FRAC_PI_2 + 0.5),
        (pt(17.0, 1.0), 0.45),
        (pt(1.0, 4.0), FRAC_PI_2 - 0.55),
    ]
}

/// Twelve lab client positions, including bench-shadowed and in-glass spots.
pub fn lab_client_positions() -> Vec<Point> {
    vec![
        pt(4.0, 3.0),
        pt(9.0, 2.5),
        pt(15.0, 3.5),
        pt(18.0, 6.0),
        pt(16.5, 12.5), // inside the glass room
        pt(10.0, 13.0),
        pt(5.0, 12.0),
        pt(2.5, 8.5),
        pt(8.0, 6.5), // just below the metal bench
        pt(8.0, 8.5), // just above it
        pt(13.0, 9.0),
        pt(10.5, 10.2), // near the pillar
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lab_geometry_is_sane() {
        let fp = lab_floorplan();
        let (lo, hi) = fp.bounds().unwrap();
        assert_eq!(lo, pt(0.0, 0.0));
        assert_eq!(hi, pt(20.0, 15.0));
        for c in lab_client_positions() {
            assert!(c.x > 0.0 && c.x < 20.0 && c.y > 0.0 && c.y < 15.0);
        }
        for (p, _) in lab_ap_poses() {
            assert!(p.x > 0.0 && p.x < 20.0 && p.y > 0.0 && p.y < 15.0);
        }
    }

    #[test]
    fn floorplan_has_expected_scale() {
        let fp = office_floorplan();
        let (lo, hi) = fp.bounds().unwrap();
        assert_eq!(lo, pt(0.0, 0.0));
        assert_eq!(hi, pt(WIDTH, DEPTH));
        assert!(fp.walls().len() > 25, "office should be cluttered");
        assert_eq!(fp.pillars().len(), 2);
    }

    #[test]
    fn there_are_41_clients_inside_the_building() {
        let clients = client_positions();
        assert_eq!(clients.len(), 41, "paper deploys 41 clients");
        for c in &clients {
            assert!(c.x > 0.0 && c.x < WIDTH, "{c:?}");
            assert!(c.y > 0.0 && c.y < DEPTH, "{c:?}");
        }
    }

    #[test]
    fn clients_are_distinct_and_spread() {
        let clients = client_positions();
        for (i, a) in clients.iter().enumerate() {
            for b in clients.iter().skip(i + 1) {
                assert!(a.distance(*b) > 0.5, "{a:?} and {b:?} too close");
            }
        }
    }

    #[test]
    fn aps_are_inside_and_distinct() {
        let poses = ap_poses();
        assert_eq!(poses.len(), 6);
        for (p, _) in &poses {
            assert!(p.x >= 0.0 && p.x <= WIDTH && p.y >= 0.0 && p.y <= DEPTH);
        }
        for (i, (a, _)) in poses.iter().enumerate() {
            for (b, _) in poses.iter().skip(i + 1) {
                assert!(a.distance(*b) > 5.0, "APs should be spread out");
            }
        }
    }

    #[test]
    fn every_client_reaches_every_ap_with_some_path() {
        use at_channel::PathTracer;
        let fp = office_floorplan();
        let tracer = PathTracer::new(&fp);
        for (ap, _) in ap_poses() {
            for c in client_positions() {
                let paths = tracer.trace(c, 1.5, ap, 1.5);
                assert!(!paths.is_empty(), "no path {c:?} → {ap:?}");
            }
        }
    }

    #[test]
    fn some_clients_have_blocked_direct_paths() {
        // The pillar placements must actually block somebody (Fig. 17).
        use at_channel::geometry::seg;
        let fp = office_floorplan();
        let mut blocked = 0;
        for (ap, _) in ap_poses() {
            for c in client_positions() {
                if fp.pillars_crossed(&seg(c, ap)) > 0 {
                    blocked += 1;
                }
            }
        }
        assert!(blocked >= 3, "only {blocked} blocked pairs");
    }
}
