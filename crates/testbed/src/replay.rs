//! The golden replay scenario: a scripted six-AP office session recorded
//! into an `at-replay` journal.
//!
//! The committed fixture under `tests/fixtures/replay_office/` is this
//! scenario, recorded once and replayed by CI's `replay_check` gate: if
//! any numerical stage of the pipeline changes behavior, the replayed
//! fixes stop matching the recorded ones bit-for-bit and the build
//! fails. The generator and the checker share the config constructors in
//! this module so the deployment can never drift from the journal.
//!
//! Determinism notes: the scenario drives the server from a single
//! thread (every client call blocks on its reply), the session policy
//! suppresses the wall-clock reaper (hour-scale intervals), and queries
//! carry no deadline — so the journal's admission order is total and the
//! recorded outcomes are a pure function of the seed.

use std::io;
use std::path::Path;
use std::sync::Arc;

use at_config::TopologyOp;
use at_core::health::HealthPolicy;
use at_replay::{JournalMeta, Recorder, RecorderConfig, RecorderStats};
use at_serve::{
    ApClient, AppClient, ClientConfig, Encoding, RecordTap, ServeConfig, ServiceConfig,
    SessionPolicy,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

use crate::deployment::Deployment;
use crate::experiments::ExperimentConfig;
use crate::serve::{ap_clients_with, service_config, submit_position_keyed};

/// Seed behind the committed golden journal (deployment, radio noise,
/// and client positions all derive from it).
pub const GOLDEN_SEED: u64 = 7;

/// Session cap for the golden scenario: six resident sessions' worth of
/// spectra, so the eight-session script exercises LRU eviction.
pub const GOLDEN_CAP: usize = 36;

/// The office deployment the golden journal is recorded under.
pub fn golden_deployment() -> Deployment {
    Deployment::office(GOLDEN_SEED)
}

/// The experiment (capture/pipeline) config for the golden scenario.
pub fn golden_experiment() -> ExperimentConfig {
    ExperimentConfig::arraytrack(GOLDEN_SEED)
}

/// The service config the golden journal is recorded under. The
/// `replay_check` gate rebuilds this; the journal's fingerprint pins it.
pub fn golden_service(dep: &Deployment, cfg: &ExperimentConfig) -> ServiceConfig {
    service_config(dep, cfg.pipeline.music.bins, HealthPolicy::default())
}

/// The session policy for the golden scenario: eviction-sized cap,
/// wall-clock reaper effectively disabled (hour-scale intervals) so no
/// nondeterministic tick/reap events land in the journal.
pub fn golden_session_policy() -> SessionPolicy {
    SessionPolicy {
        idle_timeout: Duration::from_secs(3600),
        max_resident_spectra: GOLDEN_CAP,
        reap_interval: Duration::from_secs(3600),
        refresh_interval: Duration::from_secs(3600),
        ..SessionPolicy::default()
    }
}

/// The journal meta block the golden scenario records under.
pub fn golden_meta(service: &ServiceConfig) -> JournalMeta {
    JournalMeta::for_service(service, golden_session_policy())
}

fn other_err(e: impl std::fmt::Display) -> io::Error {
    io::Error::other(e.to_string())
}

/// Records the golden scenario into a journal at `dir` and returns the
/// recorder's totals. `rotate_bytes` sizes the segments (the committed
/// fixture uses a small value so the journal spans several files and the
/// reader's cross-segment path stays exercised).
pub fn record_golden(dir: &Path, rotate_bytes: u64) -> io::Result<RecorderStats> {
    let dep = golden_deployment();
    let cfg = golden_experiment();
    let service = golden_service(&dep, &cfg);
    let session = golden_session_policy();
    let recorder = Arc::new(Recorder::create(
        dir,
        golden_meta(&service),
        RecorderConfig { rotate_bytes },
    )?);
    let serve_cfg = ServeConfig {
        session,
        ..ServeConfig::default()
    };
    let tap: Arc<dyn RecordTap> = recorder.clone();
    let server = at_serve::spawn_recorded(service, serve_cfg, "127.0.0.1:0", Some(tap))?;
    let addr = server.addr();

    let client_cfg = ClientConfig::default();
    let mut aps = ap_clients_with(addr, dep.aps.len(), client_cfg, Encoding::LosslessDelta)
        .map_err(other_err)?;
    let mut app = AppClient::connect(addr, client_cfg).map_err(other_err)?;
    let mut rng = StdRng::seed_from_u64(GOLDEN_SEED);

    // Eight sessions against a six-session cap: keys 6 and 7 push the
    // earliest sessions out, so evicted-key queries exercise the
    // NoObservations path.
    for key in 0..8u64 {
        submit_position_keyed(
            &mut aps,
            key,
            &dep,
            dep.clients[key as usize],
            &cfg,
            &mut rng,
        )
        .map_err(other_err)?;
    }
    // Queries across evicted and resident sessions. Typed localize
    // refusals come back as `ClientError::Localize` — recorded outcomes,
    // not failures of the scenario.
    for key in 0..5u64 {
        query(&mut app, key)?;
    }
    // Two acquisition failures degrade AP 3 (`degraded_after` = 2);
    // subsequent fixes are taken under down-weighted trust.
    aps[3].report_failure(3).map_err(other_err)?;
    aps[3].report_failure(3).map_err(other_err)?;
    for key in 5..8u64 {
        query(&mut app, key)?;
    }
    // A never-submitted key, then a fresh capture that heals AP 3
    // (success reports reset its failure count) and refreshes session 2;
    // the final fix is back at full trust.
    query(&mut app, 99)?;
    submit_position_keyed(&mut aps, 2, &dep, dep.clients[10], &cfg, &mut rng).map_err(other_err)?;
    query(&mut app, 2)?;

    drop(aps);
    drop(app);
    server.shutdown();
    Ok(recorder.finish())
}

fn query(app: &mut AppClient, key: u64) -> io::Result<()> {
    match app.localize(key, None) {
        Ok(_) | Err(at_serve::ClientError::Localize(_)) => Ok(()),
        Err(e) => Err(other_err(e)),
    }
}

/// Records the reconfiguration scenario into a journal at `dir`: the
/// golden office deployment taken through a remove → move → re-add epoch
/// sequence with sessions queried in every epoch, so the committed
/// fixture under `tests/fixtures/replay_reconfig/` pins the epoch
/// machinery end to end (journal epoch records, store/health remaps,
/// per-epoch engine rebuilds) the same way `replay_office` pins the
/// steady-state pipeline.
pub fn record_reconfig_golden(dir: &Path, rotate_bytes: u64) -> io::Result<RecorderStats> {
    let mut dep = golden_deployment();
    let cfg = golden_experiment();
    let service = golden_service(&dep, &cfg);
    let recorder = Arc::new(Recorder::create(
        dir,
        golden_meta(&service),
        RecorderConfig { rotate_bytes },
    )?);
    let serve_cfg = ServeConfig {
        session: golden_session_policy(),
        ..ServeConfig::default()
    };
    let tap: Arc<dyn RecordTap> = recorder.clone();
    let server = at_serve::spawn_recorded(service, serve_cfg, "127.0.0.1:0", Some(tap))?;
    let addr = server.addr();

    let client_cfg = ClientConfig::default();
    let mut aps = ap_clients_with(addr, dep.aps.len(), client_cfg, Encoding::LosslessDelta)
        .map_err(other_err)?;
    let mut app = AppClient::connect(addr, client_cfg).map_err(other_err)?;
    // A distinct stream from the steady-state golden journal, so the two
    // fixtures exercise different radio noise.
    let mut rng = StdRng::seed_from_u64(GOLDEN_SEED ^ 0xEC0);

    // Epoch 0: four sessions against the full six-AP deployment.
    for key in 0..4u64 {
        submit_position_keyed(
            &mut aps,
            key,
            &dep,
            dep.clients[key as usize],
            &cfg,
            &mut rng,
        )
        .map_err(other_err)?;
    }
    for key in 0..4u64 {
        query(&mut app, key)?;
    }

    // Epoch 1: AP 2 departs mid-service. Resident sessions keep their
    // five surviving spectra (ids above 2 shift down) and keep fixing on
    // the surviving quorum; a fresh session sees only five APs.
    let departed = dep.aps.remove(2);
    let info = app
        .reconfigure(&TopologyOp::Remove { ap_id: 2 })
        .map_err(other_err)?;
    assert_eq!(info.epoch, 1, "remove must open epoch 1");
    aps.remove(2);
    for key in 0..4u64 {
        query(&mut app, key)?;
    }
    submit_position_keyed(&mut aps, 4, &dep, dep.clients[4], &cfg, &mut rng).map_err(other_err)?;
    query(&mut app, 4)?;

    // Epoch 2: AP 0 is moved half a meter. It keeps its id but starts
    // cold (old-geometry spectra are reaped), so the next captures
    // repopulate it against the rebuilt grid.
    let mut moved_pose = dep.aps[0].pose;
    moved_pose.center.x += 0.5;
    dep.aps[0].pose = moved_pose;
    let info = app
        .reconfigure(&TopologyOp::Move {
            ap_id: 0,
            pose: moved_pose,
        })
        .map_err(other_err)?;
    assert_eq!(info.epoch, 2, "move must open epoch 2");
    for key in [1u64, 4] {
        submit_position_keyed(
            &mut aps,
            key,
            &dep,
            dep.clients[key as usize + 4],
            &cfg,
            &mut rng,
        )
        .map_err(other_err)?;
        query(&mut app, key)?;
    }

    // Epoch 3: the departed AP rejoins cold at the end of the id space,
    // with its original radio hardware and calibration.
    let rejoin_pose = departed.pose;
    dep.aps.push(departed);
    let info = app
        .reconfigure(&TopologyOp::Add { pose: rejoin_pose })
        .map_err(other_err)?;
    assert_eq!(info.epoch, 3, "re-add must open epoch 3");
    aps.push(ApClient::connect_with(addr, client_cfg, Encoding::LosslessDelta).map_err(other_err)?);
    submit_position_keyed(&mut aps, 6, &dep, dep.clients[6], &cfg, &mut rng).map_err(other_err)?;
    query(&mut app, 6)?;
    query(&mut app, 0)?;

    drop(aps);
    drop(app);
    server.shutdown();
    Ok(recorder.finish())
}
