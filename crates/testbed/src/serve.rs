//! Serving a simulated deployment over the wire: the bridge between the
//! testbed apparatus and the `at-serve` network boundary.
//!
//! The paper's operating model (§1) has APs stream processed spectra into
//! a central service that clients query. This module wires the simulated
//! office/lab deployments into that loop: build an [`at_serve`] service
//! from a [`Deployment`]'s poses and floorplan bounds, capture spectra
//! through the usual experiment path, and push them to the server through
//! the wire protocol instead of in-process calls.

use crate::deployment::Deployment;
use crate::experiments::{compute_spectrum, ExperimentConfig};
use at_channel::geometry::Point;
use at_core::health::HealthPolicy;
use at_serve::{Client, ClientError, ServeConfig, ServerHandle, ServiceConfig};
use rand::Rng;
use std::io;

/// The wire-service description of a deployment: its AP poses, its
/// floorplan's search region, and the given fusion policy. `bins` must
/// match the spectra the capture pipeline produces (the paper pipeline's
/// MUSIC scan uses 720).
pub fn service_config(dep: &Deployment, bins: usize, policy: HealthPolicy) -> ServiceConfig {
    ServiceConfig {
        poses: dep.aps.iter().map(|ap| ap.pose).collect(),
        region: dep.search_region(),
        bins,
        policy,
    }
}

/// Spawns a loopback location server for `dep` on an ephemeral port.
pub fn serve_deployment(
    dep: &Deployment,
    bins: usize,
    policy: HealthPolicy,
    cfg: ServeConfig,
) -> io::Result<ServerHandle> {
    at_serve::spawn(service_config(dep, bins, policy), cfg, "127.0.0.1:0")
}

/// Captures a client transmission at every AP of `dep` (the full
/// simulated radio + calibration + MUSIC path) and submits the processed
/// spectra into `client`'s session over the wire. Returns the session's
/// observation count after the last submission.
pub fn submit_position<R: Rng>(
    client: &mut Client,
    dep: &Deployment,
    position: Point,
    cfg: &ExperimentConfig,
    rng: &mut R,
) -> Result<u32, ClientError> {
    let mut observations = 0;
    for ap in 0..dep.aps.len() {
        let spectrum = compute_spectrum(dep, ap, position, cfg, rng);
        observations = client.submit(ap as u32, 0, &spectrum)?;
    }
    Ok(observations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_serve::ClientConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The full loop: simulated office capture → wire submission →
    /// batched server fusion → fix, accurate to within a couple of
    /// meters despite multipath.
    #[test]
    fn office_deployment_serves_a_client_over_the_wire() {
        let dep = Deployment::office(7);
        let cfg = ExperimentConfig::arraytrack(7);
        let server = serve_deployment(
            &dep,
            cfg.pipeline.music.bins,
            HealthPolicy::default(),
            ServeConfig::default(),
        )
        .expect("spawn");

        let truth = dep.clients[4];
        let mut rng = StdRng::seed_from_u64(99);
        let mut client = Client::connect(server.addr(), ClientConfig::default()).expect("connect");
        let n = submit_position(&mut client, &dep, truth, &cfg, &mut rng).expect("submit");
        assert_eq!(n as usize, dep.aps.len());

        let fix = client.localize(None).expect("fix");
        let err = fix.position.sub(truth).norm();
        assert!(err < 4.0, "office fix off by {err:.2} m");
        assert_eq!(fix.health.len(), dep.aps.len());

        let stats = server.shutdown();
        assert_eq!(stats.fixes, 1);
        assert_eq!(stats.shed, 0);
    }
}
