//! Serving a simulated deployment over the wire: the bridge between the
//! testbed apparatus and the `at-serve` network boundary.
//!
//! The paper's operating model (§1) has APs stream processed spectra into
//! a central service that clients query. This module wires the simulated
//! office/lab deployments into that loop: build an [`at_serve`] service
//! from a [`Deployment`]'s poses and floorplan bounds, capture spectra
//! through the usual experiment path, and push them to the server through
//! the wire protocol instead of in-process calls.

use crate::deployment::Deployment;
use crate::experiments::{compute_spectrum, ExperimentConfig};
use at_channel::geometry::Point;
use at_core::health::HealthPolicy;
use at_serve::{
    ApClient, Client, ClientConfig, ClientError, ClientKey, Encoding, ServeConfig, ServerHandle,
    ServiceConfig,
};
use rand::Rng;
use std::io;
use std::net::SocketAddr;

/// The wire-service description of a deployment: its AP poses, its
/// floorplan's search region, and the given fusion policy. `bins` must
/// match the spectra the capture pipeline produces (the paper pipeline's
/// MUSIC scan uses 720).
pub fn service_config(dep: &Deployment, bins: usize, policy: HealthPolicy) -> ServiceConfig {
    ServiceConfig {
        poses: dep.aps.iter().map(|ap| ap.pose).collect(),
        region: dep.search_region(),
        bins,
        policy,
    }
}

/// Spawns a loopback location server for `dep` on an ephemeral port.
pub fn serve_deployment(
    dep: &Deployment,
    bins: usize,
    policy: HealthPolicy,
    cfg: ServeConfig,
) -> io::Result<ServerHandle> {
    at_serve::spawn(service_config(dep, bins, policy), cfg, "127.0.0.1:0")
}

/// Captures a client transmission at every AP of `dep` (the full
/// simulated radio + calibration + MUSIC path) and submits the processed
/// spectra into `client`'s session over the wire. Returns the session's
/// observation count after the last submission.
pub fn submit_position<R: Rng>(
    client: &mut Client,
    dep: &Deployment,
    position: Point,
    cfg: &ExperimentConfig,
    rng: &mut R,
) -> Result<u32, ClientError> {
    let mut observations = 0;
    for ap in 0..dep.aps.len() {
        let spectrum = compute_spectrum(dep, ap, position, cfg, rng);
        observations = client.submit(ap as u32, 0, &spectrum)?;
    }
    Ok(observations)
}

/// Connects one ingestion connection per AP of the deployment — the
/// paper's Figure 1 topology, where each of the (six, for the office) AP
/// processes holds its own long-lived link to the aggregation server.
/// Streams raw (uncompressed) spectra; see [`ap_clients_with`] for a
/// compressed uplink.
pub fn ap_clients(
    addr: SocketAddr,
    n_aps: usize,
    cfg: ClientConfig,
) -> Result<Vec<ApClient>, ClientError> {
    ap_clients_with(addr, n_aps, cfg, Encoding::Raw)
}

/// [`ap_clients`] with an explicit uplink [`Encoding`] policy — the
/// protocol-v3 compressed wire forms with automatic raw fallback against
/// pre-v3 servers.
pub fn ap_clients_with(
    addr: SocketAddr,
    n_aps: usize,
    cfg: ClientConfig,
    encoding: Encoding,
) -> Result<Vec<ApClient>, ClientError> {
    (0..n_aps)
        .map(|_| ApClient::connect_with(addr, cfg, encoding))
        .collect()
}

/// Captures a client transmission at every AP of `dep` and streams each
/// processed spectrum through *that AP's own* ingestion connection,
/// tagged with `key` — the multi-process equivalent of
/// [`submit_position`]. Returns the key's resident spectrum count after
/// the last submission.
pub fn submit_position_keyed<R: Rng>(
    aps: &mut [ApClient],
    key: ClientKey,
    dep: &Deployment,
    position: Point,
    cfg: &ExperimentConfig,
    rng: &mut R,
) -> Result<u32, ClientError> {
    assert_eq!(aps.len(), dep.aps.len(), "one ingestion connection per AP");
    let mut observations = 0;
    for (ap, conn) in aps.iter_mut().enumerate() {
        let spectrum = compute_spectrum(dep, ap, position, cfg, rng);
        observations = conn.submit(key, ap as u32, 0, &spectrum)?;
    }
    Ok(observations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_serve::ClientConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The full loop: simulated office capture → wire submission →
    /// batched server fusion → fix, accurate to within a couple of
    /// meters despite multipath.
    #[test]
    fn office_deployment_serves_a_client_over_the_wire() {
        let dep = Deployment::office(7);
        let cfg = ExperimentConfig::arraytrack(7);
        let server = serve_deployment(
            &dep,
            cfg.pipeline.music.bins,
            HealthPolicy::default(),
            ServeConfig::default(),
        )
        .expect("spawn");

        let truth = dep.clients[4];
        let mut rng = StdRng::seed_from_u64(99);
        let mut client = Client::connect(server.addr(), ClientConfig::default()).expect("connect");
        let n = submit_position(&mut client, &dep, truth, &cfg, &mut rng).expect("submit");
        assert_eq!(n as usize, dep.aps.len());

        let fix = client.localize(None).expect("fix");
        let err = fix.position.sub(truth).norm();
        assert!(err < 4.0, "office fix off by {err:.2} m");
        assert_eq!(fix.health.len(), dep.aps.len());

        let stats = server.shutdown();
        assert_eq!(stats.fixes, 1);
        assert_eq!(stats.shed, 0);
    }

    /// Figure 1 topology over the wire: one ingestion connection per
    /// office AP streams keyed spectra, a separate app connection asks
    /// "where is key 7?" and gets a fix within the usual office accuracy.
    #[test]
    fn six_ap_processes_feed_one_server_and_an_app_queries_by_key() {
        let dep = Deployment::office(3);
        let cfg = ExperimentConfig::arraytrack(3);
        let server = serve_deployment(
            &dep,
            cfg.pipeline.music.bins,
            HealthPolicy::default(),
            ServeConfig::default(),
        )
        .expect("spawn");

        let truth = dep.clients[2];
        let mut rng = StdRng::seed_from_u64(17);
        let mut aps =
            ap_clients(server.addr(), dep.aps.len(), ClientConfig::default()).expect("connect aps");
        let key: ClientKey = 7;
        let n = submit_position_keyed(&mut aps, key, &dep, truth, &cfg, &mut rng).expect("submit");
        assert_eq!(n as usize, dep.aps.len());

        let mut app =
            at_serve::AppClient::connect(server.addr(), ClientConfig::default()).expect("connect");
        let fix = app.localize(key, None).expect("fix");
        let err = fix.position.sub(truth).norm();
        assert!(err < 4.0, "keyed office fix off by {err:.2} m");
        assert_eq!(fix.health.len(), dep.aps.len());

        let stats = server.shutdown();
        assert_eq!(stats.fixes, 1);
        assert_eq!(stats.sessions_created, 1);
        assert_eq!(stats.sessions_resident, 1);
        assert_eq!(stats.spectra_resident as usize, dep.aps.len());
    }

    /// The same Figure 1 topology over the protocol-v3 quantized uplink:
    /// real MUSIC pseudospectra (not synthetic lobes) survive 16-bit
    /// log-domain quantization with no loss of office-level accuracy, and
    /// the server's uplink accounting shows the frames genuinely shrank.
    #[test]
    fn quantized_uplink_keeps_office_accuracy() {
        let dep = Deployment::office(5);
        let cfg = ExperimentConfig::arraytrack(5);
        let server = serve_deployment(
            &dep,
            cfg.pipeline.music.bins,
            HealthPolicy::default(),
            ServeConfig::default(),
        )
        .expect("spawn");

        let truth = dep.clients[1];
        let mut rng = StdRng::seed_from_u64(23);
        let mut aps = ap_clients_with(
            server.addr(),
            dep.aps.len(),
            ClientConfig::default(),
            Encoding::Quantized,
        )
        .expect("connect aps");
        let key: ClientKey = 11;
        let n = submit_position_keyed(&mut aps, key, &dep, truth, &cfg, &mut rng).expect("submit");
        assert_eq!(n as usize, dep.aps.len());
        assert!(
            aps.iter().all(|c| c.encoding() == Encoding::Quantized),
            "no fallback against our own server"
        );

        let mut app =
            at_serve::AppClient::connect(server.addr(), ClientConfig::default()).expect("connect");
        let fix = app.localize(key, None).expect("fix");
        let err = fix.position.sub(truth).norm();
        assert!(err < 4.0, "quantized office fix off by {err:.2} m");

        let stats = server.shutdown();
        assert_eq!(stats.submits_compressed as usize, dep.aps.len());
        assert_eq!(stats.submits_raw, 0);
        assert!(
            stats.uplink_compressed_bytes * 2 < stats.uplink_raw_equiv_bytes,
            "physical MUSIC spectra must compress at least 2×: {} vs {}",
            stats.uplink_compressed_bytes,
            stats.uplink_raw_equiv_bytes
        );
    }
}
