//! Live-operation simulation: the full Figure-1 flow over time.
//!
//! Clients transmit frames at random times; every AP captures each frame
//! into its circular [`FrameBuffer`] with a timestamp and client id; a
//! server tick every refresh interval drains per-client groups of frames
//! within the 100 ms suppression window (§2.4 step 1), runs the pipeline,
//! fuses the APs, and feeds a [`Tracker`]. This is the loop a deployed
//! ArrayTrack would run, and the integration surface for the buffer and
//! grouping semantics that per-fix experiments bypass.

use crate::deployment::{CaptureConfig, Deployment};
use at_channel::geometry::Point;
use at_channel::Transmitter;
use at_core::pipeline::{process_frame_group, ApPipelineConfig};
use at_core::suppression::{SuppressionConfig, GROUPING_WINDOW_S};
use at_core::synthesis::{localize, ApObservation};
use at_core::tracking::{Tracker, TrackerConfig};
use at_frontend::{FrameBuffer, FrameEntry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A client participating in the stream.
#[derive(Clone, Debug)]
pub struct StreamClient {
    /// Client identifier (also the suppression grouping key).
    pub id: u64,
    /// Trajectory: position as a function of time (seconds).
    pub path: fn(f64) -> Point,
    /// Mean interval between the client's frames, seconds.
    pub mean_frame_interval: f64,
}

/// Stream simulation settings.
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Simulated wall-clock duration, seconds.
    pub duration: f64,
    /// Server tick (location refresh) interval, seconds (paper: 100 ms).
    pub refresh: f64,
    /// Capture settings.
    pub capture: CaptureConfig,
    /// Per-AP pipeline settings.
    pub pipeline: ApPipelineConfig,
    /// Per-AP frame buffer capacity.
    pub buffer_capacity: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            duration: 2.0,
            refresh: 0.1,
            capture: CaptureConfig::default(),
            pipeline: ApPipelineConfig::arraytrack(8),
            buffer_capacity: 64,
            seed: 0,
        }
    }
}

/// One produced location fix.
#[derive(Clone, Copy, Debug)]
pub struct FixEvent {
    /// Server time of the fix, seconds.
    pub time: f64,
    /// Which client.
    pub client_id: u64,
    /// Raw fused estimate.
    pub raw: Point,
    /// Tracker-smoothed estimate.
    pub tracked: Point,
    /// Ground-truth position at fix time.
    pub truth: Point,
    /// Number of frames per AP that fed this fix.
    pub frames_used: usize,
}

impl FixEvent {
    /// Raw estimate error, meters.
    pub fn raw_error(&self) -> f64 {
        self.raw.distance(self.truth)
    }

    /// Tracked estimate error, meters.
    pub fn tracked_error(&self) -> f64 {
        self.tracked.distance(self.truth)
    }
}

/// Summary of a stream run.
#[derive(Clone, Debug)]
pub struct StreamReport {
    /// Every fix produced, in time order.
    pub fixes: Vec<FixEvent>,
    /// Total frames transmitted across clients.
    pub frames_sent: usize,
    /// Frames evicted from AP buffers (overload indicator).
    pub frames_evicted: u64,
}

impl StreamReport {
    /// Fixes for one client.
    pub fn fixes_for(&self, client_id: u64) -> Vec<&FixEvent> {
        self.fixes
            .iter()
            .filter(|f| f.client_id == client_id)
            .collect()
    }

    /// Mean raw error over all fixes.
    pub fn mean_raw_error(&self) -> f64 {
        if self.fixes.is_empty() {
            return 0.0;
        }
        self.fixes.iter().map(|f| f.raw_error()).sum::<f64>() / self.fixes.len() as f64
    }

    /// Mean tracked error over all fixes.
    pub fn mean_tracked_error(&self) -> f64 {
        if self.fixes.is_empty() {
            return 0.0;
        }
        self.fixes.iter().map(|f| f.tracked_error()).sum::<f64>() / self.fixes.len() as f64
    }
}

/// Runs the live loop over a deployment.
pub fn run_stream(dep: &Deployment, clients: &[StreamClient], cfg: &StreamConfig) -> StreamReport {
    assert!(!clients.is_empty(), "need at least one client");
    assert!(cfg.refresh > 0.0 && cfg.duration > 0.0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Generate each client's frame schedule (exponential inter-arrivals).
    let mut frames: Vec<(f64, usize)> = Vec::new(); // (time, client index)
    for (ci, c) in clients.iter().enumerate() {
        let mut t = rng.gen_range(0.0..c.mean_frame_interval);
        while t < cfg.duration {
            frames.push((t, ci));
            let u: f64 = 1.0 - rng.gen::<f64>();
            t += -c.mean_frame_interval * u.ln();
        }
    }
    frames.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
    let frames_sent = frames.len();

    // One buffer per AP, as in the hardware design (Fig. 1).
    let mut buffers: Vec<FrameBuffer> = (0..dep.aps.len())
        .map(|_| FrameBuffer::new(cfg.buffer_capacity))
        .collect();
    let mut trackers: Vec<Tracker> = clients
        .iter()
        .map(|_| Tracker::new(TrackerConfig::default()))
        .collect();
    let mut last_fix_time: Vec<Option<f64>> = vec![None; clients.len()];

    let region = dep.search_region().with_resolution(0.2);
    let suppression = SuppressionConfig::default();
    let mut fixes = Vec::new();

    let mut frame_iter = frames.into_iter().peekable();
    let mut tick = cfg.refresh;
    while tick <= cfg.duration + 1e-9 {
        // Deliver all frames transmitted before this tick.
        while let Some(&(t, ci)) = frame_iter.peek() {
            if t > tick {
                break;
            }
            frame_iter.next();
            let client = &clients[ci];
            let pos = (client.path)(t);
            let tx = Transmitter::at(pos);
            for (ap_idx, buffer) in buffers.iter_mut().enumerate() {
                let block = dep.capture_frame(ap_idx, pos, &tx, &cfg.capture, &mut rng);
                buffer.push(FrameEntry {
                    block,
                    timestamp: t,
                    client_id: client.id,
                    detection_metric: 1.0,
                });
            }
        }

        // Serve each client that has fresh frames at every AP.
        for (ci, client) in clients.iter().enumerate() {
            let groups: Vec<Vec<FrameEntry>> = buffers
                .iter_mut()
                .map(|b| b.take_recent_group(client.id, GROUPING_WINDOW_S))
                .collect();
            if groups.iter().any(|g| g.is_empty()) {
                continue; // not every AP heard this client this tick
            }
            let frames_used = groups.iter().map(|g| g.len()).min().expect("non-empty");
            let observations: Vec<ApObservation> = groups
                .iter()
                .enumerate()
                .map(|(ap_idx, group)| {
                    let blocks: Vec<_> = group.iter().map(|e| e.block.clone()).collect();
                    ApObservation {
                        pose: dep.aps[ap_idx].pose,
                        spectrum: process_frame_group(&blocks, &cfg.pipeline, &suppression),
                    }
                })
                .collect();
            let raw = localize(&observations, region).position;
            let dt = last_fix_time[ci].map(|t| tick - t).unwrap_or(cfg.refresh);
            let tracked = trackers[ci].update(raw, dt.max(1e-3));
            last_fix_time[ci] = Some(tick);
            fixes.push(FixEvent {
                time: tick,
                client_id: client.id,
                raw,
                tracked,
                truth: (client.path)(tick),
                frames_used,
            });
        }
        tick += cfg.refresh;
    }

    StreamReport {
        fixes,
        frames_sent,
        frames_evicted: buffers.iter().map(|b| b.evicted()).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_channel::geometry::pt;

    fn static_client(_t: f64) -> Point {
        pt(20.0, 12.0)
    }

    fn walking_client(t: f64) -> Point {
        pt(10.0 + t * 1.2, 12.0)
    }

    fn second_static(_t: f64) -> Point {
        pt(34.0, 8.0)
    }

    #[test]
    fn static_client_yields_steady_fixes() {
        let dep = Deployment::free_space(1);
        let clients = [StreamClient {
            id: 7,
            path: static_client,
            mean_frame_interval: 0.03,
        }];
        let cfg = StreamConfig {
            duration: 1.0,
            seed: 2,
            ..StreamConfig::default()
        };
        let report = run_stream(&dep, &clients, &cfg);
        assert!(report.fixes.len() >= 5, "only {} fixes", report.fixes.len());
        assert!(
            report.mean_raw_error() < 0.5,
            "raw error {:.2}",
            report.mean_raw_error()
        );
        // Multiple frames per window feed suppression.
        assert!(report.fixes.iter().any(|f| f.frames_used >= 2));
        assert_eq!(report.frames_evicted, 0);
    }

    #[test]
    fn walking_client_is_tracked() {
        let dep = Deployment::free_space(3);
        let clients = [StreamClient {
            id: 1,
            path: walking_client,
            mean_frame_interval: 0.04,
        }];
        let cfg = StreamConfig {
            duration: 2.0,
            seed: 4,
            ..StreamConfig::default()
        };
        let report = run_stream(&dep, &clients, &cfg);
        assert!(report.fixes.len() >= 10);
        assert!(report.mean_raw_error() < 0.8, "{}", report.mean_raw_error());
        assert!(report.mean_tracked_error() < 0.8);
        // Fix positions advance with the walk.
        let first = report.fixes.first().unwrap().raw.x;
        let last = report.fixes.last().unwrap().raw.x;
        assert!(last > first + 1.0, "track should move: {first} -> {last}");
    }

    #[test]
    fn two_clients_are_kept_separate() {
        let dep = Deployment::free_space(5);
        let clients = [
            StreamClient {
                id: 10,
                path: static_client,
                mean_frame_interval: 0.04,
            },
            StreamClient {
                id: 20,
                path: second_static,
                mean_frame_interval: 0.04,
            },
        ];
        let cfg = StreamConfig {
            duration: 1.0,
            seed: 6,
            ..StreamConfig::default()
        };
        let report = run_stream(&dep, &clients, &cfg);
        let a = report.fixes_for(10);
        let b = report.fixes_for(20);
        assert!(!a.is_empty() && !b.is_empty());
        // Each client's fixes cluster at its own location, not the other's.
        for f in &a {
            assert!(f.raw.distance(pt(20.0, 12.0)) < 2.0, "{:?}", f.raw);
        }
        for f in &b {
            assert!(f.raw.distance(pt(34.0, 8.0)) < 2.0, "{:?}", f.raw);
        }
    }

    #[test]
    fn tiny_buffer_evicts_under_load() {
        let dep = Deployment::free_space(7);
        let clients = [StreamClient {
            id: 1,
            path: static_client,
            mean_frame_interval: 0.005, // aggressive traffic
        }];
        let cfg = StreamConfig {
            duration: 0.5,
            buffer_capacity: 2,
            seed: 8,
            ..StreamConfig::default()
        };
        let report = run_stream(&dep, &clients, &cfg);
        assert!(report.frames_evicted > 0, "tiny buffer should evict");
        // The system still produces fixes from what survives.
        assert!(!report.fixes.is_empty());
    }
}
