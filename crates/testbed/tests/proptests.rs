//! Property-based tests for the testbed's metrics and sweep machinery.

use at_testbed::{ap_subsets, ErrorStats};
use proptest::prelude::*;

/// n choose k.
fn binomial(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let mut r = 1usize;
    for i in 0..k {
        r = r * (n - i) / (i + 1);
    }
    r
}

proptest! {
    #[test]
    fn percentiles_are_monotone(mut xs in proptest::collection::vec(0.0f64..100.0, 1..64)) {
        xs.iter_mut().for_each(|x| *x = x.abs());
        let s = ErrorStats::new(xs);
        let mut prev = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = s.percentile(p);
            prop_assert!(v >= prev - 1e-12, "p{p}: {v} < {prev}");
            prev = v;
        }
        prop_assert!((s.median() - s.percentile(50.0)).abs() < 1e-12);
    }

    #[test]
    fn cdf_inverts_percentile(xs in proptest::collection::vec(0.0f64..50.0, 2..64)) {
        let n = xs.len();
        let s = ErrorStats::new(xs);
        for p in [10.0, 50.0, 90.0] {
            let v = s.percentile(p);
            // Linear interpolation sits between sorted ranks ⌊r⌋ and ⌈r⌉
            // with r = p/100·(n−1), so at least ⌊r⌋+1 samples are ≤ v.
            let rank = p / 100.0 * (n - 1) as f64;
            let guaranteed = (rank.floor() as usize + 1) as f64 / n as f64;
            prop_assert!(s.cdf_at(v + 1e-9) >= guaranteed - 1e-9);
        }
        prop_assert_eq!(s.cdf_at(f64::MAX), 1.0);
        prop_assert_eq!(s.cdf_at(-1.0), 0.0);
    }

    #[test]
    fn mean_bounded_by_extremes(xs in proptest::collection::vec(0.0f64..10.0, 1..32)) {
        let s = ErrorStats::new(xs);
        prop_assert!(s.mean() >= s.percentile(0.0) - 1e-12);
        prop_assert!(s.mean() <= s.percentile(100.0) + 1e-12);
    }

    #[test]
    fn subset_counts_are_binomial(n in 1usize..8, k in 1usize..8) {
        let subsets = ap_subsets(n, k);
        prop_assert_eq!(subsets.len(), binomial(n, k));
        // Each subset is sorted, unique, in range.
        for s in &subsets {
            prop_assert_eq!(s.len(), k.min(s.len()));
            prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(s.iter().all(|&i| i < n));
        }
        // All subsets distinct.
        let mut sorted = subsets.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), subsets.len());
    }

    #[test]
    fn cdf_points_trace_the_samples(xs in proptest::collection::vec(0.0f64..10.0, 1..48)) {
        let s = ErrorStats::new(xs.clone());
        let pts = s.cdf_points();
        prop_assert_eq!(pts.len(), xs.len());
        prop_assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
        for (i, (e, f)) in pts.iter().enumerate() {
            prop_assert!((f - (i + 1) as f64 / xs.len() as f64).abs() < 1e-12);
            prop_assert!(e.is_finite());
        }
    }
}
