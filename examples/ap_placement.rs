//! AP placement study: where you put three APs matters as much as having
//! them.
//!
//! ```sh
//! cargo run --release --example ap_placement
//! ```
//!
//! Angle-of-arrival triangulation suffers the same geometric dilution of
//! precision as GPS: APs clustered on one wall give nearly-parallel
//! bearings whose intersection is ill-conditioned, while APs spread around
//! the space cross bearings at healthy angles. This example quantifies the
//! effect with the full pipeline on a grid of test clients — useful input
//! for anyone planning an ArrayTrack deployment.

use arraytrack::channel::geometry::{pt, Point};
use arraytrack::channel::{AntennaArray, ChannelSim, Floorplan, Material, Transmitter};
use arraytrack::core::pipeline::{process_frame, ApPipelineConfig};
use arraytrack::core::synthesis::{localize, ApObservation, ApPose, SearchRegion};
use arraytrack::dsp::preamble::{Preamble, LTS0_START_S};
use arraytrack::dsp::{NoiseSource, SnapshotBlock, SAMPLE_RATE_HZ};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Evaluates one 3-AP layout over a grid of test clients; returns the
/// median localization error.
fn evaluate(floorplan: &Floorplan, poses: &[(Point, f64)], seed: u64) -> f64 {
    let sim = ChannelSim::new(floorplan);
    let preamble = Preamble::new();
    let noise = NoiseSource::with_power(1e-10);
    let region = SearchRegion::new(pt(0.0, 0.0), pt(24.0, 14.0)).with_resolution(0.2);
    let mut rng = StdRng::seed_from_u64(seed);

    let mut errors = Vec::new();
    for iy in 1..=3 {
        for ix in 1..=5 {
            let client = pt(ix as f64 * 4.0, iy as f64 * 3.5);
            let tx = Transmitter::at(client);
            let observations: Vec<ApObservation> = poses
                .iter()
                .map(|&(center, axis)| {
                    let array = AntennaArray::ula(center, axis, 8).with_offrow_element();
                    let mut streams = sim.receive(
                        &tx,
                        &array,
                        |t| preamble.eval(t),
                        LTS0_START_S + 1.0e-6,
                        10.0 / SAMPLE_RATE_HZ,
                        SAMPLE_RATE_HZ,
                    );
                    for s in &mut streams {
                        noise.corrupt(s, &mut rng);
                    }
                    let spectrum = process_frame(
                        &SnapshotBlock::new(streams),
                        &ApPipelineConfig::arraytrack(8),
                    );
                    ApObservation {
                        pose: ApPose {
                            center,
                            axis_angle: axis,
                        },
                        spectrum,
                    }
                })
                .collect();
            errors.push(localize(&observations, region).position.distance(client));
        }
    }
    errors.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    errors[errors.len() / 2]
}

fn main() {
    // A 24 m × 14 m open office with a few partitions.
    let floorplan = Floorplan::empty()
        .with_rect(pt(0.0, 0.0), pt(24.0, 14.0), Material::DRYWALL)
        .with_wall(
            arraytrack::channel::seg(pt(8.0, 0.0), pt(8.0, 5.0)),
            Material::DRYWALL,
        )
        .with_wall(
            arraytrack::channel::seg(pt(16.0, 9.0), pt(16.0, 14.0)),
            Material::GLASS,
        );

    let layouts: [(&str, [(Point, f64); 3]); 3] = [
        (
            "clustered on one wall",
            [
                (pt(4.0, 13.2), 0.3),
                (pt(12.0, 13.2), -0.3),
                (pt(20.0, 13.2), 0.2),
            ],
        ),
        (
            "two walls",
            [
                (pt(4.0, 13.2), 0.3),
                (pt(20.0, 13.2), -0.3),
                (pt(12.0, 0.8), 0.2),
            ],
        ),
        (
            "spread around the perimeter",
            [
                (pt(2.0, 12.5), 0.6),
                (pt(22.0, 11.0), 2.4),
                (pt(12.0, 0.8), -0.4),
            ],
        ),
    ];

    println!("3-AP placement study, 15 test clients each:");
    let mut results = Vec::new();
    for (i, (name, poses)) in layouts.iter().enumerate() {
        let median = evaluate(&floorplan, poses, 40 + i as u64);
        println!("  {name:32} median error {median:5.2} m");
        results.push(median);
    }
    println!(
        "spread / clustered improvement: {:.1}x",
        results[0] / results[2]
    );
    assert!(
        results[2] < results[0],
        "spread placement should beat a single-wall cluster"
    );
}
