//! The one-time AP phase calibration workflow (paper §3, eqs. 9–12).
//!
//! ```sh
//! cargo run --release --example calibrate_ap
//! ```
//!
//! Shows why calibration is necessary (uncalibrated radios point MUSIC at
//! garbage bearings), runs the two-pass cable-swap procedure, and verifies
//! the array then resolves the true bearing.

use arraytrack::channel::geometry::pt;
use arraytrack::channel::{AntennaArray, ChannelSim, Floorplan, Transmitter};
use arraytrack::core::music::{music_spectrum, strongest_bearing, MusicConfig};
use arraytrack::dsp::SnapshotBlock;
use arraytrack::frontend::{CalibrationRig, FrontEnd};
use arraytrack::linalg::Complex64;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let floorplan = Floorplan::empty();
    let sim = ChannelSim::new(&floorplan);
    let array = AntennaArray::ula(pt(0.0, 0.0), 0.0, 8);
    let truth_deg: f64 = 72.0;
    let tx = Transmitter::at(array.point_at(truth_deg.to_radians(), 10.0));

    // Simulated WARP bank: every radio has an unknown oscillator phase.
    let frontend = FrontEnd::new(8, 0xC0FFEE);
    let mut rng = StdRng::seed_from_u64(3);

    // Receive a tone and capture 10 snapshots through the radios.
    let streams = sim.receive(
        &tx,
        &array,
        |t| Complex64::cis(std::f64::consts::TAU * 1e6 * t),
        0.0,
        16.0 / arraytrack::dsp::SAMPLE_RATE_HZ,
        arraytrack::dsp::SAMPLE_RATE_HZ,
    );
    let raw = frontend.capture(&streams, 2, 10);

    let bearing = |block: &SnapshotBlock| -> f64 {
        strongest_bearing(&music_spectrum(block, &MusicConfig::default()))
            .expect("spectrum has a peak")
            .to_degrees()
    };
    let uncal = bearing(&raw);
    println!(
        "true bearing:            {truth_deg:.1}° (mirror {:.1}°)",
        360.0 - truth_deg
    );
    println!("uncalibrated MUSIC peak: {uncal:.1}°  <- oscillator offsets corrupt AoA");

    // One-time calibration: CW tone through imperfect splitter cables,
    // measured twice with cables swapped (eqs. 9-12).
    let rig = CalibrationRig::new(8, 0.3, 0xCAB1E);
    let calibration = rig.calibrate(&frontend, &mut rng);
    println!(
        "recovered per-radio offsets (rad, rel. radio 0): {}",
        calibration
            .offsets
            .iter()
            .map(|o| format!("{o:+.2}"))
            .collect::<Vec<_>>()
            .join(" ")
    );

    let fixed = calibration.apply_modulo(&raw);
    let cal = bearing(&fixed);
    println!("calibrated MUSIC peak:   {cal:.1}°");

    let err = (cal - truth_deg).abs().min((360.0 - cal - truth_deg).abs());
    assert!(
        err < 3.0,
        "calibrated bearing should match truth, got {cal:.1}°"
    );
    println!("calibration recovered the bearing to within {err:.1}°");
}
