//! Collision recovery: two clients transmit overlapping frames and
//! ArrayTrack extracts both angles of arrival via successive interference
//! cancellation (paper §4.3.5).
//!
//! ```sh
//! cargo run --release --example collision_recovery
//! ```

use arraytrack::channel::geometry::pt;
use arraytrack::channel::{AntennaArray, ChannelSim, Floorplan, Transmitter};
use arraytrack::core::sic::{process_collision, SicConfig};
use arraytrack::dsp::preamble::{Frame, PREAMBLE_S, SAMPLE_RATE_HZ};
use arraytrack::dsp::NoiseSource;
use arraytrack::linalg::Complex64;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let floorplan = Floorplan::empty();
    let sim = ChannelSim::new(&floorplan);
    let array = AntennaArray::ula(pt(0.0, 0.0), 0.0, 8);

    // Two clients at different bearings.
    let theta_a = 55f64.to_radians();
    let theta_b = 120f64.to_radians();
    let client_a = array.point_at(theta_a, 8.0);
    let client_b = array.point_at(theta_b, 11.0);
    println!(
        "client A at bearing {:.0}°, client B at bearing {:.0}°",
        55.0, 120.0
    );

    // Client B starts mid-way through client A's body: a collision, but
    // the preambles don't overlap.
    let mut rng = StdRng::seed_from_u64(5);
    let frame_a = Frame::with_random_body(10, &mut rng);
    let frame_b = Frame::with_random_body(10, &mut rng);
    let offset = PREAMBLE_S + 10.0e-6;
    let span = offset + frame_b.duration() + 5e-6;

    let rx_a = sim.receive(
        &Transmitter::at(client_a),
        &array,
        |t| frame_a.eval(t),
        0.0,
        span,
        SAMPLE_RATE_HZ,
    );
    let rx_b = sim.receive(
        &Transmitter::at(client_b),
        &array,
        |t| frame_b.eval(t - offset),
        0.0,
        span,
        SAMPLE_RATE_HZ,
    );
    let noise = NoiseSource::with_power(1e-9);
    let streams: Vec<Vec<Complex64>> = rx_a
        .into_iter()
        .zip(rx_b)
        .map(|(a, b)| {
            let mut s: Vec<Complex64> = a.into_iter().zip(b).map(|(x, y)| x + y).collect();
            noise.corrupt(&mut s, &mut rng);
            s
        })
        .collect();

    let result = process_collision(&streams, SAMPLE_RATE_HZ, &SicConfig::default())
        .expect("preambles do not overlap, so both AoAs are recoverable");

    println!(
        "detected frame starts: samples {} and {}",
        result.starts.0, result.starts.1
    );
    let top = |s: &arraytrack::core::AoaSpectrum| {
        s.find_peaks(0.3)
            .iter()
            .take(2)
            .map(|p| format!("{:.1}°", p.theta.to_degrees()))
            .collect::<Vec<_>>()
            .join(", ")
    };
    println!("frame 1 AoA peaks:               {}", top(&result.first));
    println!("frame 2 AoA peaks (after SIC):   {}", top(&result.second));

    // The first spectrum must point at A (or its mirror); the second, after
    // cancelling A's peaks, at B.
    let near = |spec: &arraytrack::core::AoaSpectrum, theta: f64| {
        spec.has_peak_near(theta, 0.1, 0.3)
            || spec.has_peak_near(std::f64::consts::TAU - theta, 0.1, 0.3)
    };
    assert!(near(&result.first, theta_a), "frame 1 should contain A");
    assert!(
        near(&result.second, theta_b),
        "frame 2 should contain B after SIC"
    );
    assert!(
        !near(&result.second, theta_a),
        "A should be cancelled from frame 2"
    );
    println!("SIC succeeded: both clients' bearings recovered from one collision");
}
