//! Real-time tracking: a client walks through the 41-client office testbed
//! and the six ArrayTrack APs follow it.
//!
//! ```sh
//! cargo run --release --example office_tracking
//! ```
//!
//! Demonstrates the paper's headline use case (§1: augmented reality /
//! navigation) — repeated sub-second location fixes as the target moves,
//! with multipath suppression fed by the motion itself.

use arraytrack::channel::geometry::{pt, Point};
use arraytrack::channel::Transmitter;
use arraytrack::core::latency::{frame_airtime, LatencyModel};
use arraytrack::core::pipeline::{process_frame_group, ApPipelineConfig};
use arraytrack::core::suppression::SuppressionConfig;
use arraytrack::core::synthesis::{localize, ApObservation};
use arraytrack::core::tracking::{Tracker, TrackerConfig};
use arraytrack::testbed::{CaptureConfig, Deployment};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let dep = Deployment::office(42);
    let cfg = CaptureConfig::default();
    let pipeline = ApPipelineConfig::arraytrack(8);
    let region = dep.search_region().with_resolution(0.2);
    let mut rng = StdRng::seed_from_u64(99);

    // A walk down the corridor and into an office.
    let waypoints = [
        pt(4.0, 12.0),
        pt(10.0, 14.0),
        pt(16.0, 16.0),
        pt(22.0, 16.5),
        pt(28.0, 16.0),
        pt(33.0, 19.0),
        pt(33.0, 21.5),
    ];

    println!("step |    truth (m)    |   estimate (m)  | raw err | tracked err | Tp (ms)");
    println!("-----+-----------------+-----------------+---------+-------------+--------");
    let mut total_err = 0.0;
    let mut total_tracked = 0.0;
    // Constant-velocity Kalman tracker over the fixes (one per second here).
    let mut tracker = Tracker::new(TrackerConfig::default());
    for (step, &target) in waypoints.iter().enumerate() {
        let tx = Transmitter::at(target);
        let t0 = Instant::now();
        // Each AP hears three frames as the client moves (≤5 cm jitter),
        // runs the full pipeline, and reports a suppressed spectrum.
        let observations: Vec<ApObservation> = (0..dep.aps.len())
            .map(|ap| {
                let blocks = dep.capture_frame_group(ap, target, &tx, &cfg, 3, 0.05, &mut rng);
                ApObservation {
                    pose: dep.aps[ap].pose,
                    spectrum: process_frame_group(
                        &blocks,
                        &pipeline,
                        &SuppressionConfig::default(),
                    ),
                }
            })
            .collect();
        let est = localize(&observations, region);
        let tp = t0.elapsed().as_secs_f64();
        let err = est.position.distance(target);
        total_err += err;
        let tracked = tracker.update(est.position, 1.0);
        let terr = tracked.distance(target);
        total_tracked += terr;
        println!(
            "  {step}  | ({:5.1}, {:5.1})  | ({:5.1}, {:5.1})  |  {err:5.2}  |    {terr:5.2}    | {:6.1}",
            target.x,
            target.y,
            est.position.x,
            est.position.y,
            tp * 1e3
        );
    }
    let mean = total_err / waypoints.len() as f64;
    let mean_tracked = total_tracked / waypoints.len() as f64;
    println!("mean raw error along the walk:     {mean:.2} m");
    println!("mean tracked error along the walk: {mean_tracked:.2} m");
    if let Some((vx, vy)) = tracker.velocity() {
        println!("tracker's final velocity estimate: ({vx:.1}, {vy:.1}) m/s");
    }

    // The paper's end-to-end latency framing for one fix on this machine.
    let model = LatencyModel::paper_defaults(frame_airtime(1500, 54e6), 0.031);
    println!(
        "modeled added latency per fix (Td+Tt+Tl+Tp−T): {:.0} ms",
        model.added_latency().as_secs_f64() * 1e3
    );
    assert!(mean < 1.5, "tracking should stay sub-1.5 m on average");
}

// Quiet the unused import lint when Point elision differs across editions.
#[allow(dead_code)]
fn _type_check(p: Point) -> Point {
    p
}
