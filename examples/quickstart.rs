//! Quickstart: localize one WiFi client with three ArrayTrack APs.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! This walks the whole pipeline in ~40 lines: simulate a client's 802.11
//! preamble through a multipath office channel, capture 10 snapshots per
//! AP, compute MUSIC AoA spectra, and fuse them into a position estimate.

use arraytrack::channel::geometry::pt;
use arraytrack::channel::{AntennaArray, ChannelSim, Floorplan, Material, Transmitter};
use arraytrack::core::pipeline::{process_frame, ApPipelineConfig};
use arraytrack::core::synthesis::{ApPose, SearchRegion};
use arraytrack::core::ArrayTrackServer;
use arraytrack::dsp::preamble::{Preamble, LTS0_START_S};
use arraytrack::dsp::{NoiseSource, SnapshotBlock, SAMPLE_RATE_HZ};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A 20 m × 12 m open-plan room: drywall shell, one glass partition.
    let floorplan = Floorplan::empty()
        .with_rect(pt(0.0, 0.0), pt(20.0, 12.0), Material::DRYWALL)
        .with_wall(
            arraytrack::channel::seg(pt(15.5, 4.0), pt(15.5, 8.0)),
            Material::GLASS,
        );
    let sim = ChannelSim::new(&floorplan);

    // The client we want to find.
    let client = pt(12.4, 7.4);
    let tx = Transmitter::at(client);
    println!("ground truth: ({:.2}, {:.2})", client.x, client.y);

    // Three APs, each an 8-antenna λ/2 array plus the off-row element,
    // oriented so the client is roughly broadside (a linear array resolves
    // poorly along its own axis — paper §2.3.3).
    let poses = [
        (pt(1.0, 1.0), 2.0),
        (pt(19.0, 2.0), 0.8),
        (pt(10.0, 11.0), 0.7),
    ];

    let mut server = ArrayTrackServer::new(SearchRegion::new(pt(0.0, 0.0), pt(20.0, 12.0)));
    let mut rng = StdRng::seed_from_u64(7);
    let preamble = Preamble::new();
    let noise = NoiseSource::with_power(1e-10);

    for (center, axis) in poses {
        let array = AntennaArray::ula(center, axis, 8).with_offrow_element();
        // Receive 10 snapshots of the first long training symbol.
        let mut streams = sim.receive(
            &tx,
            &array,
            |t| preamble.eval(t),
            LTS0_START_S + 1.0e-6,
            10.0 / SAMPLE_RATE_HZ,
            SAMPLE_RATE_HZ,
        );
        for s in &mut streams {
            noise.corrupt(s, &mut rng);
        }
        let block = SnapshotBlock::new(streams);

        // MUSIC + smoothing + geometry weighting + symmetry resolution.
        let spectrum = process_frame(&block, &ApPipelineConfig::arraytrack(8));
        let bearing = spectrum.find_peaks(0.3)[0].theta.to_degrees();
        println!(
            "AP at ({:.0}, {:.0}): strongest AoA peak at {bearing:.1}° from the array axis",
            center.x, center.y
        );
        server.add_observation(
            ApPose {
                center,
                axis_angle: axis,
            },
            spectrum,
        );
    }

    let estimate = server.localize();
    let err = estimate.position.distance(client);
    println!(
        "estimate:     ({:.2}, {:.2})  — error {:.2} m",
        estimate.position.x, estimate.position.y, err
    );
    assert!(err < 1.0, "quickstart should localize within a meter");
}
