//! The networked location service end to end: spawn an `at-serve` server
//! for the simulated office deployment on an ephemeral loopback port,
//! then localize three clients over TCP.
//!
//! ```sh
//! cargo run --release --example serve_demo
//! ```
//!
//! Each "client" here is a session on the wire: the testbed captures the
//! client's transmission at all six APs through the full radio +
//! calibration + MUSIC path, submits the processed spectra into the
//! session, and asks the server for a fix. The server batches concurrent
//! requests into one engine sweep, enforces deadlines, and sheds load
//! when its queues fill (none of that triggers here — three polite
//! clients — but the loadgen bench exercises it; see `BENCH_SERVE.json`).

use arraytrack::core::health::HealthPolicy;
use arraytrack::serve::{Client, ClientConfig, ServeConfig};
use arraytrack::testbed::{serve_deployment, submit_position, Deployment, ExperimentConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let dep = Deployment::office(42);
    let cfg = ExperimentConfig::arraytrack(42);
    let server = serve_deployment(
        &dep,
        cfg.pipeline.music.bins,
        HealthPolicy::default(),
        ServeConfig::default(),
    )
    .expect("spawn server");
    println!("location service listening on {}", server.addr());
    println!();
    println!("client |    truth (m)    |      fix (m)    |  error | RTT (ms) | AP health");
    println!("-------+-----------------+-----------------+--------+----------+----------");

    let mut rng = StdRng::seed_from_u64(7);
    for (label, &truth) in [4usize, 17, 33].iter().enumerate() {
        let truth = dep.clients[truth];
        let mut client = Client::connect(server.addr(), ClientConfig::default()).expect("connect");
        submit_position(&mut client, &dep, truth, &cfg, &mut rng).expect("submit spectra");
        let t0 = Instant::now();
        let fix = client.localize(None).expect("localize");
        let rtt = t0.elapsed().as_secs_f64() * 1e3;
        let err = fix.position.distance(truth);
        let healthy = fix
            .health
            .iter()
            .filter(|h| h.status == arraytrack::core::health::ApStatus::Healthy)
            .count();
        println!(
            "   {label}   | ({:5.1}, {:5.1})  | ({:5.1}, {:5.1})  | {err:5.2}  |  {rtt:6.1}  | {healthy}/{} healthy",
            truth.x,
            truth.y,
            fix.position.x,
            fix.position.y,
            fix.health.len(),
        );
        assert!(err < 5.0, "office fix should land within a few meters");
    }

    let stats = server.shutdown();
    println!();
    println!(
        "served {} fixes over {} connections; shed {}, deadline misses {}",
        stats.fixes, stats.connections, stats.shed, stats.deadline_missed
    );
}
