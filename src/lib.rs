//! # arraytrack — a full-system reproduction of ArrayTrack (NSDI '13)
//!
//! Fine-grained indoor WiFi localization from angle-of-arrival spectra,
//! after Xiong & Jamieson, *ArrayTrack: A Fine-Grained Indoor Location
//! System*, NSDI 2013.
//!
//! This facade re-exports the workspace crates under stable module names:
//!
//! - [`config`] — the canonical system configuration: `SystemConfig`
//!   with its canonical byte serialization and fingerprint, topology
//!   ops (add / remove / move an AP), and the epoch machinery every
//!   other layer keys off (see DESIGN.md §4l);
//! - [`linalg`] — complex numbers, matrices, Hermitian eigendecomposition;
//! - [`dsp`] — 802.11 preamble synthesis, packet detection, AWGN, CFO,
//!   correlation matrices;
//! - [`channel`] — the image-method indoor multipath simulator and antenna
//!   arrays;
//! - [`frontend`] — the WARP-like radio bank, diversity capture, and phase
//!   calibration;
//! - [`core`] — MUSIC, spatial smoothing, geometry weighting, symmetry
//!   resolution, multipath suppression, likelihood synthesis, SIC,
//!   tracking;
//! - [`testbed`] — the simulated 41-client / 6-AP office, experiment
//!   sweeps, metrics, baselines and the live streaming loop;
//! - [`serve`] — the networked location service: binary wire protocol,
//!   thread-pool TCP server with admission control, deadlines and
//!   request batching, and a blocking client (see DESIGN.md §4g and
//!   `examples/serve_demo.rs`);
//! - [`obs`] — structured tracing spans and the lock-free metrics
//!   registry every pipeline stage reports into (see DESIGN.md
//!   §Observability);
//! - [`replay`] — the deterministic capture-and-replay journal: record
//!   every admitted submission and query at the server's admission tap,
//!   then re-drive them through a fresh pipeline asserting bit-exact fix
//!   parity (see DESIGN.md §4k).
//!
//! ## Minimal example
//!
//! Localize one client with three APs (see `examples/quickstart.rs` for
//! the narrated version):
//!
//! ```
//! use arraytrack::channel::geometry::pt;
//! use arraytrack::channel::{AntennaArray, ChannelSim, Floorplan, Transmitter};
//! use arraytrack::core::pipeline::{process_frame, ApPipelineConfig};
//! use arraytrack::core::synthesis::{ApPose, SearchRegion};
//! use arraytrack::core::ArrayTrackServer;
//! use arraytrack::dsp::{Preamble, SnapshotBlock, SAMPLE_RATE_HZ};
//!
//! let floorplan = Floorplan::empty();
//! let sim = ChannelSim::new(&floorplan);
//! let client = pt(6.0, 4.0);
//! let preamble = Preamble::new();
//! let mut server =
//!     ArrayTrackServer::new(SearchRegion::new(pt(0.0, 0.0), pt(12.0, 8.0)));
//! for (center, axis) in [(pt(0.0, 0.0), 0.4), (pt(12.0, 0.0), 2.2), (pt(6.0, 8.0), -0.5)] {
//!     let array = AntennaArray::ula(center, axis, 8).with_offrow_element();
//!     let streams = sim.receive(
//!         &Transmitter::at(client),
//!         &array,
//!         |t| preamble.eval(t),
//!         arraytrack::dsp::preamble::LTS0_START_S + 1.0e-6,
//!         10.0 / SAMPLE_RATE_HZ,
//!         SAMPLE_RATE_HZ,
//!     );
//!     let spectrum = process_frame(&SnapshotBlock::new(streams),
//!                                  &ApPipelineConfig::arraytrack(8));
//!     server.add_observation(ApPose { center, axis_angle: axis }, spectrum);
//! }
//! let estimate = server.localize();
//! assert!(estimate.position.distance(client) < 0.3);
//! ```

#![forbid(unsafe_code)]

pub use at_channel as channel;
pub use at_config as config;
pub use at_core as core;
pub use at_dsp as dsp;
pub use at_frontend as frontend;
pub use at_linalg as linalg;
pub use at_obs as obs;
pub use at_replay as replay;
pub use at_serve as serve;
pub use at_testbed as testbed;
