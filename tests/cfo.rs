//! Integration tests for client carrier-frequency offset: CFO must not
//! disturb in-row MUSIC, must corrupt uncorrected diversity synthesis, and
//! must be fully absorbed by the estimate-and-derotate path.

use arraytrack::channel::geometry::{angle_diff, pt};
use arraytrack::channel::Transmitter;
use arraytrack::core::pipeline::{process_frame, ApPipelineConfig, SymmetryMode};
use arraytrack::core::symmetry::dominant_side;
use arraytrack::dsp::cfo::max_cfo_hz;
use arraytrack::testbed::{CaptureConfig, Deployment};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A worst-case-tolerance client CFO (+20 ppm).
fn big_cfo() -> f64 {
    max_cfo_hz()
}

#[test]
fn cfo_does_not_disturb_inrow_music() {
    // The CFO rotation is common-mode across antennas: the correlation
    // matrix (x·xᴴ) cancels it, so plain MUSIC bearings are unaffected.
    let dep = Deployment::free_space(1);
    let cfg = CaptureConfig {
        offrow: false,
        ..CaptureConfig::default()
    };
    let client = pt(20.0, 12.0);
    let truth = dep.aps[0].pose.bearing_to(client);
    let mut pipeline = ApPipelineConfig::arraytrack(8);
    pipeline.symmetry = SymmetryMode::Off;
    pipeline.weighting = false;

    let bearing = |cfo: f64, seed: u64| -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let tx = Transmitter::at(client).with_cfo(cfo);
        let block = dep.capture_frame(0, client, &tx, &cfg, &mut rng);
        process_frame(&block, &pipeline).find_peaks(0.5)[0].theta
    };
    let b0 = bearing(0.0, 5);
    let b1 = bearing(big_cfo(), 5);
    let fold = |b: f64| angle_diff(b, truth).min(angle_diff(b, std::f64::consts::TAU - truth));
    assert!(fold(b0) < 2f64.to_radians());
    assert!(
        fold(b1) < 2f64.to_radians(),
        "CFO shifted in-row MUSIC: {b1}"
    );
}

#[test]
fn cfo_rotates_the_offrow_set_and_correction_removes_it() {
    // The diversity-synthesized lower set (S1 capture) picks up exactly
    // 2π·Δf·3.2 µs of phase relative to the upper set; the corrected
    // capture must match the zero-CFO capture.
    let dep = Deployment::free_space(2);
    let client = pt(20.0, 18.0);
    let cfo = big_cfo();
    let expected_rot = std::f64::consts::TAU * cfo * arraytrack::dsp::cfo::LTS_SEPARATION_S;

    let offrow_phase = |cfo_hz: f64, correct: bool| -> f64 {
        let cfg = CaptureConfig {
            cfo_correction: correct,
            noise_power: 1e-14, // near-noiseless: isolate the CFO effect
            ..CaptureConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(4);
        let tx = Transmitter::at(client).with_cfo(cfo_hz);
        let block = dep.capture_frame(0, client, &tx, &cfg, &mut rng);
        // Phase of the off-row antenna relative to in-row antenna 0.
        let mut acc = arraytrack::linalg::Complex64::ZERO;
        for (a, b) in block.stream(8).iter().zip(block.stream(0)) {
            acc += *a * b.conj();
        }
        acc.arg()
    };

    let clean = offrow_phase(0.0, false);
    let uncorrected = offrow_phase(cfo, false);
    let corrected = offrow_phase(cfo, true);

    let wrap = |x: f64| {
        let t = x.rem_euclid(std::f64::consts::TAU);
        if t > std::f64::consts::PI {
            t - std::f64::consts::TAU
        } else {
            t
        }
    };
    let drift = wrap(uncorrected - clean).abs();
    assert!(
        (drift - expected_rot).abs() < 0.05,
        "uncorrected drift {drift:.3} rad, expected {expected_rot:.3}"
    );
    assert!(
        wrap(corrected - clean).abs() < 0.02,
        "corrected capture should match the zero-CFO capture"
    );
}

#[test]
fn corrected_cfo_preserves_side_decisions() {
    let dep = Deployment::free_space(7);
    let cfg = CaptureConfig::default();
    for (i, &client) in dep.clients.iter().take(6).enumerate() {
        let mut rng = StdRng::seed_from_u64(40 + i as u64);
        let tx = Transmitter::at(client).with_cfo(big_cfo());
        let block = dep.capture_frame(0, client, &tx, &cfg, &mut rng);
        let truth_bearing = dep.aps[0].pose.bearing_to(client);
        let truth = if truth_bearing < std::f64::consts::PI {
            arraytrack::core::symmetry::Side::Upper
        } else {
            arraytrack::core::symmetry::Side::Lower
        };
        assert_eq!(dominant_side(&block, 8), truth, "client {i}");
    }
}

#[test]
fn corrected_cfo_localization_matches_no_cfo() {
    use arraytrack::core::synthesis::{localize, ApObservation};
    let dep = Deployment::free_space(3);
    let cfg = CaptureConfig::default();
    let pipeline = ApPipelineConfig::arraytrack(8);
    let client = pt(28.0, 10.0);
    let region = dep.search_region().with_resolution(0.2);

    let run = |cfo: f64| -> f64 {
        let mut rng = StdRng::seed_from_u64(9);
        let tx = Transmitter::at(client).with_cfo(cfo);
        let obs: Vec<ApObservation> = (0..6)
            .map(|ap| {
                let block = dep.capture_frame(ap, client, &tx, &cfg, &mut rng);
                ApObservation {
                    pose: dep.aps[ap].pose,
                    spectrum: process_frame(&block, &pipeline),
                }
            })
            .collect();
        localize(&obs, region).position.distance(client)
    };
    let e_clean = run(0.0);
    let e_cfo = run(big_cfo());
    assert!(e_clean < 0.3, "clean error {e_clean:.2}");
    assert!(e_cfo < 0.4, "CFO-corrected error {e_cfo:.2}");
}
