//! Smoke checks for the CI driver itself: `./ci.sh --stage <name>` with
//! an unknown name must fail fast and tell the operator what the valid
//! stage names are (instead of a bare usage line they have to go read
//! the script to decode).

use std::path::Path;
use std::process::Command;

fn ci_sh() -> Command {
    let script = Path::new(env!("CARGO_MANIFEST_DIR")).join("ci.sh");
    let mut cmd = Command::new("bash");
    cmd.arg(script);
    cmd
}

#[test]
fn unknown_stage_exits_2_and_lists_the_valid_stage_names() {
    let out = ci_sh()
        .args(["--stage", "no-such-stage"])
        .output()
        .expect("run ci.sh");
    assert_eq!(out.status.code(), Some(2), "unknown stage must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown stage 'no-such-stage'"),
        "stderr must name the bad stage: {stderr}"
    );
    assert!(
        stderr.contains("valid stages:"),
        "stderr must list valid stages: {stderr}"
    );
    // Spot-check the list is the real one, not a stale hardcoded copy:
    // every stage the dispatch knows must be present.
    for stage in [
        "fmt",
        "build",
        "tier1",
        "proto",
        "proto-props",
        "codec",
        "replay",
        "topology",
        "robustness",
        "serve",
        "serve-sessions",
        "lint",
        "bench-smoke",
    ] {
        assert!(stderr.contains(stage), "stage '{stage}' missing: {stderr}");
    }
}

#[test]
fn missing_stage_argument_exits_2_with_usage() {
    let out = ci_sh().arg("--stage").output().expect("run ci.sh");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("usage:"),
        "stderr must show usage: {stderr}"
    );
    assert!(stderr.contains("valid stages:"));
}

#[test]
fn unknown_flag_exits_2_with_usage() {
    let out = ci_sh().arg("--bogus").output().expect("run ci.sh");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}
