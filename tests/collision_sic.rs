//! Integration tests for collision handling (§4.3.5) across the channel,
//! detector, and SIC modules.

use arraytrack::channel::geometry::{angle_diff, pt};
use arraytrack::channel::{AntennaArray, ChannelSim, Floorplan, Transmitter};
use arraytrack::core::sic::{process_collision, SicConfig, SicError};
use arraytrack::dsp::preamble::{Frame, PREAMBLE_S, SAMPLE_RATE_HZ};
use arraytrack::dsp::NoiseSource;
use arraytrack::linalg::Complex64;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Synthesizes a two-client collision with the given start offset for the
/// second frame (seconds).
fn collide(
    theta_a: f64,
    theta_b: f64,
    offset_s: f64,
    seed: u64,
) -> (Vec<Vec<Complex64>>, AntennaArray) {
    let fp = Floorplan::empty();
    let sim = ChannelSim::new(&fp);
    let array = AntennaArray::ula(pt(0.0, 0.0), 0.0, 8);
    let a = array.point_at(theta_a, 9.0);
    let b = array.point_at(theta_b, 12.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let fa = Frame::with_random_body(8, &mut rng);
    let fb = Frame::with_random_body(8, &mut rng);
    let span = offset_s.max(0.0) + fb.duration() + fa.duration();
    let rx_a = sim.receive(
        &Transmitter::at(a),
        &array,
        |t| fa.eval(t),
        0.0,
        span,
        SAMPLE_RATE_HZ,
    );
    let rx_b = sim.receive(
        &Transmitter::at(b),
        &array,
        |t| fb.eval(t - offset_s),
        0.0,
        span,
        SAMPLE_RATE_HZ,
    );
    let noise = NoiseSource::with_power(1e-10);
    let streams = rx_a
        .into_iter()
        .zip(rx_b)
        .map(|(x, y)| {
            let mut s: Vec<Complex64> = x.into_iter().zip(y).map(|(p, q)| p + q).collect();
            noise.corrupt(&mut s, &mut rng);
            s
        })
        .collect();
    (streams, array)
}

fn best_err(spec: &arraytrack::core::AoaSpectrum, truth: f64) -> f64 {
    spec.find_peaks(0.3)
        .iter()
        .map(|p| angle_diff(p.theta, truth).min(angle_diff(p.theta, std::f64::consts::TAU - truth)))
        .fold(f64::INFINITY, f64::min)
}

#[test]
fn sic_recovers_both_bearings() {
    let ta = 50f64.to_radians();
    let tb = 125f64.to_radians();
    let (streams, _) = collide(ta, tb, PREAMBLE_S + 8e-6, 1);
    let out = process_collision(&streams, SAMPLE_RATE_HZ, &SicConfig::default()).unwrap();
    assert!(best_err(&out.first, ta) < 3f64.to_radians());
    assert!(best_err(&out.second, tb) < 3f64.to_radians());
    // A cancelled out of frame 2.
    assert!(
        !out.second.has_peak_near(ta, 5f64.to_radians(), 0.3)
            && !out
                .second
                .has_peak_near(std::f64::consts::TAU - ta, 5f64.to_radians(), 0.3),
        "first client's bearing should be cancelled"
    );
}

#[test]
fn overlapping_preambles_are_rejected() {
    let (streams, _) = collide(
        50f64.to_radians(),
        125f64.to_radians(),
        PREAMBLE_S * 0.5, // second preamble overlaps the first
        2,
    );
    let err = process_collision(&streams, SAMPLE_RATE_HZ, &SicConfig::default()).unwrap_err();
    // Either the detector merges them (one detection) or they're flagged
    // as overlapping — both are correct rejections.
    match err {
        SicError::PreamblesOverlap | SicError::NotEnoughDetections(_) => {}
    }
}

#[test]
fn single_packet_is_not_a_collision() {
    let fp = Floorplan::empty();
    let sim = ChannelSim::new(&fp);
    let array = AntennaArray::ula(pt(0.0, 0.0), 0.0, 8);
    let mut rng = StdRng::seed_from_u64(3);
    let f = Frame::with_random_body(4, &mut rng);
    let tx = Transmitter::at(array.point_at(1.0, 10.0));
    let streams = sim.receive(
        &tx,
        &array,
        |t| f.eval(t),
        0.0,
        f.duration() + 10e-6,
        SAMPLE_RATE_HZ,
    );
    let err = process_collision(&streams, SAMPLE_RATE_HZ, &SicConfig::default()).unwrap_err();
    assert_eq!(err, SicError::NotEnoughDetections(1));
}

#[test]
fn close_bearings_still_separable() {
    // 25° apart: SIC must not cancel the second client along with the first.
    let ta = 80f64.to_radians();
    let tb = 105f64.to_radians();
    let (streams, _) = collide(ta, tb, PREAMBLE_S + 12e-6, 4);
    let out = process_collision(&streams, SAMPLE_RATE_HZ, &SicConfig::default()).unwrap();
    assert!(best_err(&out.second, tb) < 3f64.to_radians());
}
