//! Cross-crate integration tests: client → channel → front end →
//! ArrayTrack pipeline → location, exercising the whole system the way the
//! experiment harness does.

use arraytrack::channel::geometry::{angle_diff, pt};
use arraytrack::channel::Transmitter;
use arraytrack::core::pipeline::{
    process_frame, process_frame_group, ApPipelineConfig, SymmetryMode,
};
use arraytrack::core::suppression::SuppressionConfig;
use arraytrack::core::synthesis::{localize, ApObservation};
use arraytrack::core::MusicConfig;
use arraytrack::testbed::{CaptureConfig, Deployment};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Localizes one client with all six APs of a deployment.
fn localize_client(
    dep: &Deployment,
    client: arraytrack::channel::Point,
    cfg: &CaptureConfig,
    pipeline: &ApPipelineConfig,
    frames: usize,
    seed: u64,
) -> arraytrack::channel::Point {
    let mut rng = StdRng::seed_from_u64(seed);
    let tx = Transmitter::at(client);
    let observations: Vec<ApObservation> = (0..dep.aps.len())
        .map(|ap| {
            let blocks = dep.capture_frame_group(ap, client, &tx, cfg, frames, 0.05, &mut rng);
            ApObservation {
                pose: dep.aps[ap].pose,
                spectrum: process_frame_group(&blocks, pipeline, &SuppressionConfig::default()),
            }
        })
        .collect();
    let region = dep.search_region().with_resolution(0.2);
    localize(&observations, region).position
}

#[test]
fn free_space_localization_is_centimeter_grade() {
    let dep = Deployment::free_space(1);
    let cfg = CaptureConfig::default();
    let pipeline = ApPipelineConfig::arraytrack(8);
    for (i, &client) in [pt(12.0, 12.0), pt(30.0, 8.0), pt(40.0, 18.0)]
        .iter()
        .enumerate()
    {
        let est = localize_client(&dep, client, &cfg, &pipeline, 1, 100 + i as u64);
        assert!(
            est.distance(client) < 0.3,
            "client {i}: error {:.2} m",
            est.distance(client)
        );
    }
}

#[test]
fn office_localization_is_submeter_for_typical_clients() {
    let dep = Deployment::office(2);
    let cfg = CaptureConfig::default();
    let pipeline = ApPipelineConfig::arraytrack(8);
    let mut errors = Vec::new();
    for (i, &client) in dep.clients.iter().take(8).enumerate() {
        let est = localize_client(&dep, client, &cfg, &pipeline, 3, 200 + i as u64);
        errors.push(est.distance(client));
    }
    errors.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = errors[errors.len() / 2];
    assert!(
        median < 1.0,
        "median office error {median:.2} m, all: {errors:?}"
    );
}

#[test]
fn uncalibrated_ap_breaks_aoa_and_calibration_restores_it() {
    use arraytrack::core::music::{music_spectrum, strongest_bearing};
    use arraytrack::dsp::SnapshotBlock;
    use arraytrack::frontend::{CalibrationRig, FrontEnd};
    use arraytrack::linalg::Complex64;

    let fp = arraytrack::channel::Floorplan::empty();
    let sim = arraytrack::channel::ChannelSim::new(&fp);
    let array = arraytrack::channel::AntennaArray::ula(pt(0.0, 0.0), 0.0, 8);
    let theta = 65f64.to_radians();
    let tx = Transmitter::at(array.point_at(theta, 12.0));
    let streams = sim.receive(
        &tx,
        &array,
        |t| Complex64::cis(std::f64::consts::TAU * 1e6 * t),
        0.0,
        12.0 / arraytrack::dsp::SAMPLE_RATE_HZ,
        arraytrack::dsp::SAMPLE_RATE_HZ,
    );

    let frontend = FrontEnd::new(8, 77);
    let raw: SnapshotBlock = frontend.capture(&streams, 0, 10);
    let uncal = strongest_bearing(&music_spectrum(&raw, &MusicConfig::default())).unwrap();
    let uncal_err = angle_diff(uncal, theta).min(angle_diff(uncal, std::f64::consts::TAU - theta));

    let mut rng = StdRng::seed_from_u64(7);
    let cal = CalibrationRig::new(8, 0.25, 88).calibrate(&frontend, &mut rng);
    let fixed = cal.apply_modulo(&raw);
    let calb = strongest_bearing(&music_spectrum(&fixed, &MusicConfig::default())).unwrap();
    let cal_err = angle_diff(calb, theta).min(angle_diff(calb, std::f64::consts::TAU - theta));

    assert!(cal_err < 2f64.to_radians(), "calibrated error {cal_err}");
    assert!(
        uncal_err > 2.0 * cal_err + 1f64.to_radians(),
        "uncalibrated ({uncal_err}) should be far worse than calibrated ({cal_err})"
    );
}

#[test]
fn pillar_blocked_client_still_localized() {
    let dep = Deployment::office(3);
    let cfg = CaptureConfig::default();
    let pipeline = ApPipelineConfig::arraytrack(8);
    // Clients placed directly behind the pillars in the testbed.
    for &client in &[pt(18.0, 11.0), pt(34.0, 11.0)] {
        let est = localize_client(&dep, client, &cfg, &pipeline, 3, 55);
        assert!(
            est.distance(client) < 2.0,
            "blocked client error {:.2} m",
            est.distance(client)
        );
    }
}

#[test]
fn pipeline_is_deterministic() {
    let dep = Deployment::office(4);
    let cfg = CaptureConfig::default();
    let pipeline = ApPipelineConfig::arraytrack(8);
    let client = dep.clients[5];
    let a = localize_client(&dep, client, &cfg, &pipeline, 3, 99);
    let b = localize_client(&dep, client, &cfg, &pipeline, 3, 99);
    assert_eq!(a, b, "same seed must reproduce the same estimate");
}

#[test]
fn low_snr_degrades_gracefully() {
    let dep = Deployment::free_space(5);
    let pipeline = ApPipelineConfig::arraytrack(8);
    let client = pt(24.0, 12.0);
    let good = CaptureConfig::default();
    // 40 dB more noise: near or below 0 dB SNR at range.
    let bad = CaptureConfig {
        noise_power: 1e-6,
        ..good
    };
    let e_good = localize_client(&dep, client, &good, &pipeline, 1, 31).distance(client);
    let e_bad = localize_client(&dep, client, &bad, &pipeline, 1, 31).distance(client);
    assert!(e_good < 0.3, "clean error {e_good:.2}");
    // No panic, a finite in-region answer, just worse.
    assert!(e_bad.is_finite());
    assert!(e_bad > e_good);
}

#[test]
fn symmetry_modes_agree_in_benign_geometry() {
    // For a broadside free-space client every mode should find the client;
    // PerPeak and WholeSide must both kill the ghost.
    let dep = Deployment::free_space(6);
    let cfg = CaptureConfig::default();
    let client = pt(20.0, 12.0);
    let mut rng = StdRng::seed_from_u64(9);
    let tx = Transmitter::at(client);
    let block = dep.capture_frame(0, client, &tx, &cfg, &mut rng);
    let truth = dep.aps[0].pose.bearing_to(client);
    for mode in [SymmetryMode::WholeSide, SymmetryMode::PerPeak] {
        let mut pc = ApPipelineConfig::arraytrack(8);
        pc.symmetry = mode;
        let spec = process_frame(&block, &pc);
        assert!(
            spec.has_peak_near(truth, 3f64.to_radians(), 0.3),
            "{mode:?} lost the true peak"
        );
        let ghost = std::f64::consts::TAU - truth;
        assert!(
            spec.sample(ghost) < 0.5 * spec.sample(truth),
            "{mode:?} kept the ghost"
        );
    }
}

#[test]
fn more_aps_reduce_error_on_average() {
    let dep = Deployment::office(8);
    let cfg = CaptureConfig::default();
    let pipeline = ApPipelineConfig::arraytrack(8);
    let region = dep.search_region().with_resolution(0.2);
    let mut err3 = 0.0;
    let mut err6 = 0.0;
    let clients = &dep.clients[..6];
    for (i, &client) in clients.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(300 + i as u64);
        let tx = Transmitter::at(client);
        let obs: Vec<ApObservation> = (0..6)
            .map(|ap| {
                let blocks = dep.capture_frame_group(ap, client, &tx, &cfg, 3, 0.05, &mut rng);
                ApObservation {
                    pose: dep.aps[ap].pose,
                    spectrum: process_frame_group(
                        &blocks,
                        &pipeline,
                        &SuppressionConfig::default(),
                    ),
                }
            })
            .collect();
        err3 += localize(&obs[..3], region).position.distance(client);
        err6 += localize(&obs, region).position.distance(client);
    }
    assert!(
        err6 <= err3,
        "6-AP total error {err6:.2} should not exceed 3-AP {err3:.2}"
    );
}

#[test]
fn height_and_polarization_are_handled_not_fatal() {
    let dep = Deployment::free_space(10);
    let cfg = CaptureConfig::default();
    let pipeline = ApPipelineConfig::arraytrack(8);
    let client = pt(20.0, 10.0);
    let region = dep.search_region().with_resolution(0.2);
    for tx in [
        Transmitter::at(client).with_height(0.0),
        Transmitter::at(client).with_polarization_mismatch(std::f64::consts::FRAC_PI_4),
    ] {
        let mut rng = StdRng::seed_from_u64(77);
        let obs: Vec<ApObservation> = (0..6)
            .map(|ap| {
                let blocks = dep.capture_frame_group(ap, client, &tx, &cfg, 1, 0.0, &mut rng);
                ApObservation {
                    pose: dep.aps[ap].pose,
                    spectrum: process_frame_group(
                        &blocks,
                        &pipeline,
                        &SuppressionConfig::default(),
                    ),
                }
            })
            .collect();
        let est = localize(&obs, region).position;
        assert!(
            est.distance(client) < 1.0,
            "adverse-condition error {:.2} m",
            est.distance(client)
        );
    }
}
