//! Robustness tier: seeded fault scenarios against the full office
//! deployment, asserting *graceful* degradation — error grows as hardware
//! fails, the system never panics, never emits NaN, and returns typed
//! errors once the surviving deployment cannot support a fix.
//!
//! Run with the tier-1 suite (`cargo test --test faults`) or via `ci.sh`.

use arraytrack::core::faults::FaultPlan;
use arraytrack::core::health::{HealthPolicy, LocalizeError};
use arraytrack::core::pipeline::ArrayTrackServer;
use arraytrack::core::AoaSpectrum;
use arraytrack::testbed::acquire::{
    acquire_spectrum, localize_under_faults, AcquireConfig, AcquireError,
};
use arraytrack::testbed::{compute_spectrum, Deployment, ExperimentConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

/// Deterministic scenario seed shared by the tier (ci.sh pins it too).
const SEED: u64 = 4242;

/// Clients exercised by the degradation sweeps: a spread of easy corridor
/// positions and harder in-office ones.
const CLIENTS: [usize; 10] = [0, 2, 5, 9, 13, 17, 22, 27, 33, 38];

struct Fixture {
    dep: Deployment,
    cfg: ExperimentConfig,
    /// Healthy-path spectra: `spectra[i][ap]` for client `CLIENTS[i]`.
    spectra: Vec<Vec<AoaSpectrum>>,
}

fn fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(|| {
        let dep = Deployment::office(SEED);
        let mut cfg = ExperimentConfig::arraytrack(SEED);
        cfg.frames = 2;
        let spectra = CLIENTS
            .iter()
            .map(|&ci| {
                let mut rng = StdRng::seed_from_u64(cfg.seed ^ (1000 + ci as u64));
                (0..dep.aps.len())
                    .map(|ap| compute_spectrum(&dep, ap, dep.clients[ci], &cfg, &mut rng))
                    .collect()
            })
            .collect();
        Fixture { dep, cfg, spectra }
    })
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

/// Per-client localization error when only `live` APs contribute, fused
/// through the server's degradation path (down APs reported as failed).
fn errors_with_live(fx: &Fixture, live: &[usize]) -> Vec<f64> {
    let mut server = ArrayTrackServer::new(fx.dep.search_region());
    // Drive the dead APs to Down status once; health persists across
    // clients (as it would across refresh intervals).
    for ap in 0..fx.dep.aps.len() {
        if !live.contains(&ap) {
            for _ in 0..server.policy().down_after {
                server.report_acquisition_failure(ap);
            }
        }
    }
    CLIENTS
        .iter()
        .enumerate()
        .map(|(i, &ci)| {
            server.clear();
            for &ap in live {
                server.add_observation_from(ap, fx.dep.aps[ap].pose, fx.spectra[i][ap].clone(), 0);
            }
            let est = server.try_localize().expect("live quorum must fix");
            let err = est.position.distance(fx.dep.clients[ci]);
            assert!(err.is_finite(), "client {ci}: non-finite error");
            err
        })
        .collect()
}

#[test]
fn all_healthy_fault_layer_is_bit_exact() {
    // Acceptance criterion: with every AP healthy, the fault-injection
    // layer's output is *identical* to the fault-free path — same spectra
    // through `acquire_spectrum`, same estimate through `try_localize`.
    let fx = fixture();
    let plan = FaultPlan::healthy(fx.dep.aps.len());
    let acq = AcquireConfig::default();
    let ci = CLIENTS[3];
    let mut r_fault = StdRng::seed_from_u64(SEED ^ 99);
    let mut r_clean = StdRng::seed_from_u64(SEED ^ 99);
    let mut server = ArrayTrackServer::new(fx.dep.search_region());
    for ap in 0..fx.dep.aps.len() {
        let a = acquire_spectrum(&fx.dep, ap, ci, &fx.cfg, &plan, &acq, &mut r_fault)
            .expect("healthy plan must acquire");
        let b = compute_spectrum(&fx.dep, ap, fx.dep.clients[ci], &fx.cfg, &mut r_clean);
        assert_eq!(a.age, 0);
        for (x, y) in a.spectrum.values().iter().zip(b.values()) {
            assert_eq!(*x, *y, "AP {ap}: healthy fault path must be bit-identical");
        }
        server.add_observation_from(ap, fx.dep.aps[ap].pose, a.spectrum, a.age);
    }
    let plain = server.localize();
    let guarded = server.try_localize().expect("all healthy");
    assert_eq!(plain.position.x, guarded.position.x);
    assert_eq!(plain.position.y, guarded.position.y);
    assert_eq!(plain.likelihood, guarded.likelihood);
}

#[test]
fn error_degrades_monotonically_as_aps_fail() {
    // Fig. 14-style: kill APs one at a time (1 → top-center, 3 →
    // bottom-right, 5 → left wall) and watch the median error grow but
    // stay useful. Acceptance criterion: with 3 of 6 APs healthy the
    // median stays under 2× the healthy baseline.
    let fx = fixture();
    let med6 = median(errors_with_live(fx, &[0, 1, 2, 3, 4, 5]));
    let med5 = median(errors_with_live(fx, &[0, 2, 3, 4, 5]));
    let med4 = median(errors_with_live(fx, &[0, 2, 4, 5]));
    let med3 = median(errors_with_live(fx, &[0, 2, 4]));
    println!(
        "median error: 6 APs {med6:.3} m, 5 APs {med5:.3} m, 4 APs {med4:.3} m, 3 APs {med3:.3} m"
    );
    // Monotone growth, with slack for near-equal neighboring sizes (the
    // paper's Fig. 14 also shows 5 ≈ 6).
    assert!(
        med5 >= med6 - 0.10,
        "5-AP median {med5:.3} below 6-AP {med6:.3}"
    );
    assert!(
        med4 >= med6 - 0.10,
        "4-AP median {med4:.3} below 6-AP {med6:.3}"
    );
    assert!(
        med3 >= med6 - 0.10,
        "3-AP median {med3:.3} below 6-AP {med6:.3}"
    );
    assert!(
        med3 >= med5 - 0.10,
        "3-AP median {med3:.3} below 5-AP {med5:.3}"
    );
    // Graceful: the half-deployment median is bounded.
    assert!(
        med3 < 2.0 * med6,
        "3-AP median {med3:.3} m must stay under 2× the healthy {med6:.3} m"
    );
}

#[test]
fn antenna_dropout_degrades_gracefully() {
    // Two dead in-row elements at half the APs: reduced aperture, finite
    // non-negative spectra, and a fix that is still in the ballpark.
    let fx = fixture();
    let plan = FaultPlan::healthy(fx.dep.aps.len())
        .with_dead_elements(0, &[1, 5])
        .with_dead_elements(2, &[3, 6])
        .with_dead_elements(4, &[0, 7]);
    let acq = AcquireConfig::default();
    let policy = HealthPolicy::default();
    for (i, &ci) in CLIENTS.iter().take(4).enumerate() {
        let mut rng = StdRng::seed_from_u64(SEED ^ (7000 + ci as u64));
        for ap in 0..fx.dep.aps.len() {
            let a = acquire_spectrum(&fx.dep, ap, ci, &fx.cfg, &plan, &acq, &mut rng)
                .expect("dropout is not an acquisition failure");
            assert!(
                a.spectrum
                    .values()
                    .iter()
                    .all(|v| v.is_finite() && *v >= 0.0),
                "AP {ap}: dropout spectrum must stay finite and non-negative"
            );
        }
        let mut rng = StdRng::seed_from_u64(SEED ^ (7000 + ci as u64));
        let est = localize_under_faults(&fx.dep, ci, &fx.cfg, &plan, &acq, &policy, &mut rng)
            .expect("six degraded-aperture APs still fix");
        let err = est.position.distance(fx.dep.clients[ci]);
        let healthy: f64 = {
            let mut server = ArrayTrackServer::new(fx.dep.search_region());
            for ap in 0..fx.dep.aps.len() {
                server.add_observation_from(ap, fx.dep.aps[ap].pose, fx.spectra[i][ap].clone(), 0);
            }
            server
                .try_localize()
                .unwrap()
                .position
                .distance(fx.dep.clients[ci])
        };
        assert!(err.is_finite());
        assert!(
            err <= healthy + 4.0,
            "client {ci}: dropout error {err:.2} m vs healthy {healthy:.2} m"
        );
    }
}

#[test]
fn full_outage_returns_typed_error_not_panic() {
    let fx = fixture();
    let all: Vec<usize> = (0..fx.dep.aps.len()).collect();
    let plan = FaultPlan::healthy(fx.dep.aps.len()).with_outages(&all);
    let mut rng = StdRng::seed_from_u64(SEED);
    let err = localize_under_faults(
        &fx.dep,
        CLIENTS[0],
        &fx.cfg,
        &plan,
        &AcquireConfig::default(),
        &HealthPolicy::default(),
        &mut rng,
    )
    .unwrap_err();
    assert_eq!(err, LocalizeError::NoObservations);
}

#[test]
fn all_antennas_dead_returns_typed_error_not_panic() {
    let fx = fixture();
    let dead: Vec<usize> = (0..fx.cfg.capture.elements).collect();
    let mut plan = FaultPlan::healthy(fx.dep.aps.len());
    for ap in 0..fx.dep.aps.len() {
        plan = plan.with_dead_elements(ap, &dead);
    }
    // Per-AP: a typed NoSignal, not a panic or a NaN spectrum.
    let mut rng = StdRng::seed_from_u64(SEED ^ 1);
    let err = acquire_spectrum(
        &fx.dep,
        0,
        CLIENTS[0],
        &fx.cfg,
        &plan,
        &AcquireConfig::default(),
        &mut rng,
    )
    .unwrap_err();
    assert_eq!(err, AcquireError::NoSignal { ap: 0 });
    // Whole deployment: typed quorum failure.
    let err = localize_under_faults(
        &fx.dep,
        CLIENTS[0],
        &fx.cfg,
        &plan,
        &AcquireConfig::default(),
        &HealthPolicy::default(),
        &mut rng,
    )
    .unwrap_err();
    assert_eq!(err, LocalizeError::NoObservations);
}

#[test]
fn stale_spectra_are_gated_by_quorum() {
    let fx = fixture();
    let policy = HealthPolicy {
        min_quorum: 3,
        ..HealthPolicy::default()
    };
    // Four APs serve spectra older than the policy tolerates: only two
    // fresh ones remain — below quorum, typed error.
    let stale_plan = FaultPlan::healthy(fx.dep.aps.len())
        .with_spectrum_age(0, 9)
        .with_spectrum_age(1, 9)
        .with_spectrum_age(3, 9)
        .with_spectrum_age(5, 9);
    let mut rng = StdRng::seed_from_u64(SEED ^ 2);
    match localize_under_faults(
        &fx.dep,
        CLIENTS[1],
        &fx.cfg,
        &stale_plan,
        &AcquireConfig::default(),
        &policy,
        &mut rng,
    ) {
        Err(LocalizeError::QuorumNotMet {
            available,
            required,
            stale,
            ..
        }) => {
            assert_eq!((available, required, stale), (2, 3, 4));
        }
        other => panic!("expected QuorumNotMet, got {other:?}"),
    }
    // Ages within tolerance: the same deployment fixes fine.
    let fresh_plan = FaultPlan::healthy(fx.dep.aps.len())
        .with_spectrum_age(0, 2)
        .with_spectrum_age(1, 1);
    let mut rng = StdRng::seed_from_u64(SEED ^ 2);
    let est = localize_under_faults(
        &fx.dep,
        CLIENTS[1],
        &fx.cfg,
        &fresh_plan,
        &AcquireConfig::default(),
        &policy,
        &mut rng,
    )
    .expect("fresh-enough spectra meet quorum");
    assert!(est
        .position
        .distance(fx.dep.clients[CLIENTS[1]])
        .is_finite());
}

#[test]
fn drift_and_noise_spikes_are_tolerated() {
    // Calibration drift on two APs plus a 15 dB noise-floor spike on a
    // third: accuracy suffers but the system keeps producing finite,
    // in-region fixes.
    let fx = fixture();
    let plan = FaultPlan::healthy(fx.dep.aps.len())
        .with_phase_drift(1, 0.25)
        .with_phase_drift(4, 0.4)
        .with_noise_spike(2, 15.0);
    let region = fx.dep.search_region();
    for &ci in CLIENTS.iter().take(3) {
        let mut rng = StdRng::seed_from_u64(SEED ^ (8000 + ci as u64));
        let est = localize_under_faults(
            &fx.dep,
            ci,
            &fx.cfg,
            &plan,
            &AcquireConfig::default(),
            &HealthPolicy::default(),
            &mut rng,
        )
        .expect("drifted deployment still fixes");
        let p = est.position;
        assert!(p.x.is_finite() && p.y.is_finite());
        assert!(
            p.x >= region.min.x - 1e-9
                && p.x <= region.max.x + 1e-9
                && p.y >= region.min.y - 1e-9
                && p.y <= region.max.y + 1e-9,
            "client {ci}: fix {p:?} escaped the search region"
        );
    }
}

#[test]
fn seeded_plans_and_runs_are_reproducible() {
    let fx = fixture();
    let a = FaultPlan::seeded(fx.dep.aps.len(), 77);
    let b = FaultPlan::seeded(fx.dep.aps.len(), 77);
    assert_eq!(a, b, "same seed must build the same plan");
    assert_ne!(
        a,
        FaultPlan::seeded(fx.dep.aps.len(), 78),
        "different seeds must differ"
    );
    let plan = FaultPlan::healthy(fx.dep.aps.len())
        .with_outage(3)
        .with_dead_elements(0, &[2])
        .with_miss_rate(5, 0.3);
    let run = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        localize_under_faults(
            &fx.dep,
            CLIENTS[2],
            &fx.cfg,
            &plan,
            &AcquireConfig::default(),
            &HealthPolicy::default(),
            &mut rng,
        )
        .expect("one outage leaves five APs")
    };
    let x = run(123);
    let y = run(123);
    assert_eq!(x.position.x, y.position.x);
    assert_eq!(x.position.y, y.position.y);
}
