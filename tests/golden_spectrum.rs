//! Golden-spectrum regression fixtures: known-good healthy-path
//! pseudospectra committed under `tests/fixtures/`, asserting the
//! processing chain stays bit-stable within tolerance across refactors.
//!
//! Regenerate after an *intentional* numerics change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_spectrum
//! ```
//!
//! and commit the rewritten CSVs alongside the change that explains them.

use arraytrack::core::AoaSpectrum;
use arraytrack::testbed::{compute_spectrum, Deployment, ExperimentConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

/// Deterministic generation seed (matches the committed fixtures).
const SEED: u64 = 4242;

/// Relative tolerance for "bit-stable within tolerance": the fixtures
/// round-trip through decimal text, so exact bit equality is one ULP too
/// strict; anything beyond this is a real numerics change.
const RTOL: f64 = 1e-12;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn write_fixture(name: &str, spec: &AoaSpectrum) {
    let mut out = String::from("bin,value\n");
    for (i, v) in spec.values().iter().enumerate() {
        out.push_str(&format!("{i},{v:.17e}\n"));
    }
    std::fs::write(fixture_path(name), out).expect("write golden fixture");
}

fn read_fixture(name: &str) -> Vec<f64> {
    let path = fixture_path(name);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {path:?} ({e}); regenerate with \
             UPDATE_GOLDEN=1 cargo test --test golden_spectrum"
        )
    });
    text.lines()
        .skip(1)
        .map(|l| {
            l.split(',')
                .nth(1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("malformed fixture line in {path:?}: {l}"))
        })
        .collect()
}

/// The healthy-path scenario behind each committed fixture.
fn scenarios() -> Vec<(&'static str, usize, usize)> {
    // (fixture file, ap index, client index)
    vec![
        ("spectrum_ap0_client0.csv", 0, 0),
        ("spectrum_ap2_client13.csv", 2, 13),
        ("spectrum_ap5_client27.csv", 5, 27),
    ]
}

fn generate(ap: usize, client: usize) -> AoaSpectrum {
    let dep = Deployment::office(SEED);
    let mut cfg = ExperimentConfig::arraytrack(SEED);
    cfg.frames = 2;
    let mut rng = StdRng::seed_from_u64(SEED ^ (1000 + client as u64));
    compute_spectrum(&dep, ap, dep.clients[client], &cfg, &mut rng)
}

#[test]
fn healthy_spectra_match_committed_goldens() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    for (name, ap, client) in scenarios() {
        let spec = generate(ap, client);
        if update {
            write_fixture(name, &spec);
            continue;
        }
        let golden = read_fixture(name);
        assert_eq!(
            golden.len(),
            spec.bins(),
            "{name}: bin count changed — regenerate deliberately"
        );
        for (i, (got, want)) in spec.values().iter().zip(&golden).enumerate() {
            let tol = RTOL * (1.0 + want.abs());
            assert!(
                (got - want).abs() <= tol,
                "{name}: bin {i} drifted: computed {got:.17e} vs golden {want:.17e}"
            );
        }
    }
}

#[test]
fn goldens_are_sane_spectra() {
    // The committed fixtures themselves must describe valid spectra:
    // finite, non-negative, and carrying at least one clear lobe.
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        return; // fixtures are being rewritten concurrently
    }
    for (name, _, _) in scenarios() {
        let v = read_fixture(name);
        assert!(!v.is_empty(), "{name} is empty");
        assert!(
            v.iter().all(|x| x.is_finite() && *x >= 0.0),
            "{name} holds non-finite or negative bins"
        );
        let max = v.iter().cloned().fold(0.0f64, f64::max);
        assert!(max > 0.0, "{name} is all-zero");
    }
}
