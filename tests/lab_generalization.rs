//! Generalization: the full pipeline on a second, differently-shaped
//! deployment (the 20 m × 15 m research lab), proving nothing was tuned to
//! the Fig. 12 office floorplan.

use arraytrack::channel::Transmitter;
use arraytrack::core::pipeline::{process_frame_group, ApPipelineConfig};
use arraytrack::core::suppression::SuppressionConfig;
use arraytrack::core::synthesis::{localize, ApObservation};
use arraytrack::testbed::{CaptureConfig, Deployment, ErrorStats};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn lab_deployment_localizes_all_clients() {
    let dep = Deployment::lab(77);
    assert_eq!(dep.aps.len(), 4);
    assert_eq!(dep.clients.len(), 12);

    let cfg = CaptureConfig::default();
    let pipeline = ApPipelineConfig::arraytrack(8);
    let region = dep.search_region().with_resolution(0.2);

    let mut errors = Vec::new();
    for (i, &client) in dep.clients.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(500 + i as u64);
        let tx = Transmitter::at(client);
        let obs: Vec<ApObservation> = (0..dep.aps.len())
            .map(|ap| {
                let blocks = dep.capture_frame_group(ap, client, &tx, &cfg, 3, 0.05, &mut rng);
                ApObservation {
                    pose: dep.aps[ap].pose,
                    spectrum: process_frame_group(
                        &blocks,
                        &pipeline,
                        &SuppressionConfig::default(),
                    ),
                }
            })
            .collect();
        let est = localize(&obs, region).position;
        // Every estimate must stay inside the lab.
        assert!(est.x >= 0.0 && est.x <= 20.0 && est.y >= 0.0 && est.y <= 15.0);
        errors.push(est.distance(client));
    }
    let stats = ErrorStats::new(errors);
    // Four APs around a metal-bench lab: meter-grade median, bounded tail
    // (the metal bench makes this harder than the office per AP).
    assert!(
        stats.median() < 1.0,
        "lab median {:.2} m ({})",
        stats.median(),
        stats.summary()
    );
    assert!(stats.mean() < 3.0, "lab mean {:.2} m", stats.mean());
    assert!(
        stats.percentile(100.0) < 8.0,
        "lab worst case {:.2} m",
        stats.percentile(100.0)
    );
}

#[test]
fn lab_search_region_matches_floorplan() {
    let dep = Deployment::lab(1);
    let region = dep.search_region();
    let (nx, ny) = region.grid_size();
    // 20 m × 15 m at 10 cm pitch.
    assert_eq!((nx, ny), (201, 151));
}

#[test]
fn metal_bench_shadow_is_harder_but_not_fatal() {
    // The client just below the bench (shadowed from the two top APs)
    // must still localize within a couple of meters.
    let dep = Deployment::lab(3);
    let client = dep.clients[8]; // (8.0, 6.5), below the bench
    let cfg = CaptureConfig::default();
    let pipeline = ApPipelineConfig::arraytrack(8);
    let region = dep.search_region().with_resolution(0.2);
    let mut rng = StdRng::seed_from_u64(901);
    let tx = Transmitter::at(client);
    let obs: Vec<ApObservation> = (0..dep.aps.len())
        .map(|ap| {
            let blocks = dep.capture_frame_group(ap, client, &tx, &cfg, 3, 0.05, &mut rng);
            ApObservation {
                pose: dep.aps[ap].pose,
                spectrum: process_frame_group(&blocks, &pipeline, &SuppressionConfig::default()),
            }
        })
        .collect();
    let est = localize(&obs, region).position;
    assert!(
        est.distance(client) < 2.5,
        "shadowed client error {:.2} m",
        est.distance(client)
    );
}
