//! End-to-end observability (tier 1).
//!
//! Lives in its own integration-test binary — one `#[test]`, one process —
//! so assertions against the *global* metrics registry can be strict
//! (exact increments) instead of tolerant of concurrent test traffic.
//!
//! Two claims, in sequence on one seeded scenario:
//!
//! 1. a single healthy `try_localize` over three captured-and-processed
//!    frames increments exactly the stage histograms and outcome counters
//!    the instrumented pipeline is supposed to touch, and nothing else
//!    error-shaped;
//! 2. the per-stage latency budget read back from those histograms agrees
//!    with independent wall-clock measurements of the same code regions,
//!    and feeds [`LatencyModel::observed`] (the model-vs-measurement
//!    unification promised in `at_core::latency`).

use arraytrack::channel::geometry::pt;
use arraytrack::channel::{AntennaArray, ChannelSim, Floorplan, Transmitter};
use arraytrack::core::latency::{frame_airtime, LatencyModel};
use arraytrack::core::pipeline::{process_frame, ApPipelineConfig};
use arraytrack::core::synthesis::{ApPose, SearchRegion};
use arraytrack::core::ArrayTrackServer;
use arraytrack::dsp::detector::MatchedFilter;
use arraytrack::dsp::preamble::{Preamble, LTS0_START_S};
use arraytrack::dsp::{SnapshotBlock, SAMPLE_RATE_HZ};
use arraytrack::obs::{global, LatencyBudget, MetricsSnapshot};
use std::time::Instant;

const APS: [(f64, f64, f64); 3] = [(0.0, 0.0, 0.3), (12.0, 0.0, 2.0), (6.0, 8.0, 4.5)];

fn capture(center: arraytrack::channel::geometry::Point, axis: f64) -> SnapshotBlock {
    let fp = Floorplan::empty();
    let sim = ChannelSim::new(&fp);
    let array = AntennaArray::ula(center, axis, 8).with_offrow_element();
    let p = Preamble::new();
    let streams = sim.receive(
        &Transmitter::at(pt(6.0, 4.0)),
        &array,
        |t| p.eval(t),
        LTS0_START_S + 1.0e-6,
        10.0 / SAMPLE_RATE_HZ,
        SAMPLE_RATE_HZ,
    );
    SnapshotBlock::new(streams)
}

/// Counter value, treating an absent series as zero (fresh registry).
fn counter(s: &MetricsSnapshot, name: &str, labels: &[(&str, &str)]) -> u64 {
    s.counter(name, labels).unwrap_or(0)
}

/// Observation count of one stage's latency histogram (0 if unobserved).
fn stage_count(s: &MetricsSnapshot, stage: &str) -> u64 {
    s.histogram("at_stage_seconds", &[("stage", stage)])
        .map_or(0, |h| h.count)
}

/// Generous two-sided agreement: each value within 5x of the other plus
/// absolute slack, absorbing span-vs-wall-clock scope differences and
/// single-core scheduler noise.
fn agrees(budget_ms: f64, wall_ms: f64) -> bool {
    budget_ms <= wall_ms * 5.0 + 0.2 && wall_ms <= budget_ms * 5.0 + 0.2
}

fn median_ms(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

#[test]
fn one_localization_increments_exactly_the_expected_metrics() {
    // ---- Claim 1: exact increments for one healthy fix. --------------
    let before = global().snapshot();

    let mut server = ArrayTrackServer::new(SearchRegion::new(pt(0.0, 0.0), pt(12.0, 8.0)));
    for (i, (x, y, axis)) in APS.into_iter().enumerate() {
        let block = capture(pt(x, y), axis);
        let spectrum = process_frame(&block, &ApPipelineConfig::arraytrack(8));
        server.add_observation_from(
            i,
            ApPose {
                center: pt(x, y),
                axis_angle: axis,
            },
            spectrum,
            0,
        );
    }
    let est = server.try_localize().expect("healthy deployment must fix");
    assert!(est.position.distance(pt(6.0, 4.0)) < 0.3);

    let after = global().snapshot();
    let dc = |name: &str, labels: &[(&str, &str)]| {
        counter(&after, name, labels) - counter(&before, name, labels)
    };
    let ds = |stage: &str| stage_count(&after, stage) - stage_count(&before, stage);

    // Exactly one localization, successful, fusing all three healthy APs.
    assert_eq!(dc("at_localize_total", &[("result", "ok")]), 1);
    assert_eq!(dc("at_localize_total", &[("result", "error")]), 0);
    assert_eq!(
        dc("at_observations_fused_total", &[("health", "healthy")]),
        3
    );
    assert_eq!(
        dc("at_observations_fused_total", &[("health", "degraded")]),
        0
    );
    for reason in ["stale", "degenerate", "down"] {
        assert_eq!(
            dc("at_observations_dropped_total", &[("reason", reason)]),
            0,
            "no observation should be dropped (reason={reason})"
        );
    }
    // Stage histograms: one spectrum per AP frame, one localize wrapping
    // one engine fusion. MUSIC internals run at least once per frame
    // (symmetry resolution may re-enter the estimator, so >=).
    assert_eq!(ds("spectrum"), 3);
    assert_eq!(ds("localize"), 1);
    assert_eq!(ds("fusion"), 1);
    assert!(ds("music_eig") >= 3, "eig ran {}x", ds("music_eig"));
    assert!(ds("music_scan") >= 3, "scan ran {}x", ds("music_scan"));

    // ---- Claim 2: budget read from metrics ~= wall clock. ------------
    // Re-run each gated stage region N times, wall-clocking from outside
    // while the instrumentation records from inside.
    const REPS: usize = 15;
    let p = Preamble::new();
    let mf = MatchedFilter::new(&p, SAMPLE_RATE_HZ);
    let mut rx = vec![arraytrack::linalg::Complex64::ZERO; 200];
    rx.extend(p.reference(SAMPLE_RATE_HZ));
    rx.extend(vec![arraytrack::linalg::Complex64::ZERO; 200]);
    let block = capture(pt(0.0, 0.0), 0.3);
    let cfg = ApPipelineConfig::arraytrack(8);

    let (mut w_detect, mut w_spectrum, mut w_fusion) = (Vec::new(), Vec::new(), Vec::new());
    for _ in 0..REPS {
        let t = Instant::now();
        assert!(mf.detect(&rx).is_some());
        w_detect.push(t.elapsed().as_secs_f64() * 1e3);

        let t = Instant::now();
        let s = process_frame(&block, &cfg);
        w_spectrum.push(t.elapsed().as_secs_f64() * 1e3);
        assert!(s.max_value() > 0.0);

        // The engine is already built (cached by the fix above), so the
        // wall clock brackets the fusion stage, not construction.
        let t = Instant::now();
        let e = server.localize();
        w_fusion.push(t.elapsed().as_secs_f64() * 1e3);
        assert!(e.position.x.is_finite());
    }

    let snap = global().snapshot();
    let budget = LatencyBudget::from_snapshot(&snap).expect("all gated stages observed");
    for (stage, wall) in [
        ("detect", median_ms(&mut w_detect)),
        ("spectrum", median_ms(&mut w_spectrum)),
        ("fusion", median_ms(&mut w_fusion)),
    ] {
        let got = budget
            .stage_ms()
            .iter()
            .find(|(s, _)| *s == stage)
            .unwrap()
            .1;
        assert!(
            agrees(got, wall),
            "stage {stage}: metric p50 {got:.3} ms vs wall-clock median {wall:.3} ms"
        );
    }

    // The observed budget slots straight into the paper's latency model:
    // measured Td and Tp, paper-model transfer and bus terms.
    let model = LatencyModel::observed(frame_airtime(1500, 54e6), &budget);
    assert!((model.detection - budget.detect_ms * 1e-3).abs() < 1e-15);
    assert!((model.processing - budget.processing_ms() * 1e-3).abs() < 1e-15);
    // This implementation beats the paper's 100 ms Matlab processing stage,
    // so the end-to-end added latency is dominated by the link model terms.
    let matlab = LatencyModel::paper_defaults(model.airtime, 100e-3);
    assert!(model.added_latency() < matlab.added_latency());
}
