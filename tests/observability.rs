//! Observability layer integration tests (tier 1).
//!
//! Cross-crate properties that the `at-obs` unit tests cannot cover alone:
//! snapshot determinism while `at_core::parallel::parallel_map` workers
//! hammer one registry, export validity for snapshots produced by the
//! *real* instrumented pipeline, and trace capture around a live
//! localization. Strict whole-registry increment accounting lives in
//! `tests/obs_end_to_end.rs` (its own process); here every assertion is
//! safe under concurrent tests sharing the global registry.

use arraytrack::channel::geometry::pt;
use arraytrack::core::parallel::parallel_map;
use arraytrack::core::synthesis::{ApPose, SearchRegion};
use arraytrack::core::{AoaSpectrum, ArrayTrackServer};
use arraytrack::obs::{self, Registry, RingBufferSink};
use std::sync::Arc;

/// A tiny synthetic three-AP server whose fix lands on `target`.
fn synthetic_server(target: arraytrack::channel::geometry::Point) -> ArrayTrackServer {
    let mut server = ArrayTrackServer::new(SearchRegion::new(pt(0.0, 0.0), pt(12.0, 8.0)));
    for (x, y, axis) in [(0.0, 0.0, 0.3), (12.0, 0.0, 2.0), (6.0, 8.0, 4.5)] {
        let pose = ApPose {
            center: pt(x, y),
            axis_angle: axis,
        };
        let theta = pose.bearing_to(target);
        let spectrum = AoaSpectrum::from_fn(720, |t| {
            let d = arraytrack::channel::geometry::angle_diff(t, theta);
            (-(d / 0.08).powi(2)).exp() + 1e-6
        });
        server.add_observation(pose, spectrum);
    }
    server
}

#[test]
fn snapshot_is_deterministic_under_parallel_map_recording() {
    // A scoped registry (not the global one) so the totals are exact even
    // with other tests running: 4 parallel_map workers × 250 items each
    // record into the same three series concurrently.
    let reg = Registry::new();
    let items: Vec<u64> = (0..1000).collect();
    let _out: Vec<()> = parallel_map(&items, 4, |i, &v| {
        reg.counter("t_ops_total", &[("worker", "any")]).inc();
        reg.histogram("t_latency_seconds", &[])
            .observe(1e-6 * (v % 7 + 1) as f64);
        if i % 2 == 0 {
            reg.gauge("t_depth", &[]).set(v as f64);
        }
    });

    let a = reg.snapshot();
    assert_eq!(a.counter("t_ops_total", &[("worker", "any")]), Some(1000));
    let h = a
        .histogram("t_latency_seconds", &[])
        .expect("histogram exists");
    assert_eq!(h.count, 1000);
    // sum of 1000 observations of (v%7+1) µs: 142 full cycles of 1..=7
    // (each summing 28 µs) plus 1+2+3+4+5+6 for the 994..999 tail.
    let expected_sum = 1e-6 * (142.0 * 28.0 + 21.0);
    assert!((h.sum - expected_sum).abs() < 1e-12, "sum {}", h.sum);

    // Quiescent registry ⇒ identical snapshots and identical exports.
    let b = reg.snapshot();
    assert_eq!(a.to_prometheus(), b.to_prometheus());
    assert_eq!(a.to_json(), b.to_json());
    assert!(a.diff(&b).is_empty(), "no traffic ⇒ empty diff");
}

#[test]
fn real_pipeline_snapshot_exports_are_well_formed() {
    // Drive real instrumented code, then validate the *global* snapshot's
    // export shape (not exact values — other tests share the registry).
    let server = synthetic_server(pt(7.0, 3.0));
    server.try_localize().expect("healthy fix");

    let snap = obs::global().snapshot();
    let prom = snap.to_prometheus();
    assert!(prom.contains("# TYPE at_stage_seconds histogram"));
    assert!(prom.contains("at_stage_seconds_bucket{stage=\"localize\",le=\"+Inf\"}"));
    assert!(prom.contains("# TYPE at_localize_total counter"));
    for line in prom.lines().filter(|l| !l.starts_with('#')) {
        let (series, value) = line.rsplit_once(' ').expect("`series value` lines");
        assert!(!series.is_empty());
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf",
            "unparseable sample value {value:?} in {line:?}"
        );
    }

    let json = snap.to_json();
    assert!(json.contains("\"at_localize_total{result=\\\"ok\\\"}\""));
    // Balanced braces/brackets ⇒ structurally sound for a follow-on parser.
    let balance = |open: char, close: char| {
        json.chars().filter(|&c| c == open).count() == json.chars().filter(|&c| c == close).count()
    };
    assert!(balance('{', '}') && balance('[', ']'));
}

#[test]
fn tracing_captures_localization_spans_when_enabled() {
    // Tracing is off by default; no sink ⇒ zero span delivery. Install a
    // ring buffer, run a fix, and the stage spans show up with fields.
    let sink = Arc::new(RingBufferSink::new(256));
    obs::set_sink(sink.clone());
    let server = synthetic_server(pt(5.0, 5.0));
    server.try_localize().expect("healthy fix");
    obs::clear_sink();

    let records = sink.records();
    let stages: Vec<&str> = records
        .iter()
        .flat_map(|r| &r.fields)
        .filter(|(k, _)| *k == "stage")
        .map(|(_, v)| v.as_str())
        .collect();
    assert!(stages.contains(&"localize"), "stages seen: {stages:?}");
    assert!(stages.contains(&"fusion"), "stages seen: {stages:?}");
    for r in &records {
        let line = r.to_json();
        assert!(line.starts_with('{') && line.ends_with('}'));
    }

    // After clearing the sink, tracing is cold again: no further growth.
    let frozen = sink.len();
    server.try_localize().expect("healthy fix");
    assert_eq!(sink.len(), frozen, "cleared sink must stop receiving spans");
}
