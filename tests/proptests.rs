//! Cross-crate property tests: invariants of the full pipeline under
//! randomized geometry.

use arraytrack::channel::geometry::{angle_diff, pt, Point};
use arraytrack::channel::{AntennaArray, ChannelSim, Floorplan, Transmitter};
use arraytrack::core::pipeline::{process_frame, ApPipelineConfig, SymmetryMode};
use arraytrack::core::synthesis::{localize, ApObservation, ApPose, SearchRegion};
use arraytrack::core::AoaSpectrum;
use arraytrack::dsp::SnapshotBlock;
use arraytrack::linalg::Complex64;
use proptest::prelude::*;

/// Captures one noiseless free-space frame at a random bearing/distance.
fn capture(theta: f64, dist: f64, axis: f64) -> (SnapshotBlock, f64) {
    let fp = Floorplan::empty();
    let sim = ChannelSim::new(&fp);
    let array = AntennaArray::ula(pt(0.0, 0.0), axis, 8).with_offrow_element();
    let tx = Transmitter::at(array.point_at(theta, dist));
    let streams = sim.receive(
        &tx,
        &array,
        |t| Complex64::cis(std::f64::consts::TAU * 1e6 * t),
        0.0,
        10.0 / arraytrack::dsp::SAMPLE_RATE_HZ,
        arraytrack::dsp::SAMPLE_RATE_HZ,
    );
    (SnapshotBlock::new(streams), theta)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn spectra_are_finite_and_nonnegative(
        theta in 0.2f64..6.0,
        dist in 3.0f64..40.0,
        axis in -3.0f64..3.0,
    ) {
        let (block, _) = capture(theta, dist, axis);
        let spec = process_frame(&block, &ApPipelineConfig::arraytrack(8));
        for v in spec.values() {
            prop_assert!(v.is_finite() && *v >= 0.0);
        }
    }

    #[test]
    fn free_space_bearing_recovered_away_from_axis(
        theta_deg in 25.0f64..155.0,
        dist in 4.0f64..30.0,
    ) {
        let theta = theta_deg.to_radians();
        let (block, truth) = capture(theta, dist, 0.0);
        let mut cfg = ApPipelineConfig::arraytrack(8);
        cfg.symmetry = SymmetryMode::Off; // test the estimator, not the side call
        let spec = process_frame(
            &SnapshotBlock::new((0..8).map(|m| block.stream(m).to_vec()).collect()),
            &cfg,
        );
        let peaks = spec.find_peaks(0.5);
        prop_assert!(!peaks.is_empty());
        let best = peaks[0].theta;
        let err = angle_diff(best, truth)
            .min(angle_diff(best, std::f64::consts::TAU - truth));
        prop_assert!(err < 2f64.to_radians(), "θ={theta_deg}°: err {err}");
    }

    #[test]
    fn localization_always_lands_inside_region(
        seed_lobe in 0.0f64..6.0,
        ax in -8.0f64..56.0,
        ay in -8.0f64..32.0,
    ) {
        // Even with garbage observations the estimate must stay inside the
        // search region (no NaN, no escape).
        let spectrum = AoaSpectrum::from_fn(360, |t| {
            (-(angle_diff(t, seed_lobe) / 0.2).powi(2)).exp() + 1e-5
        });
        let obs = vec![ApObservation {
            pose: ApPose { center: pt(ax, ay), axis_angle: seed_lobe * 0.3 },
            spectrum,
        }];
        let region = SearchRegion::new(pt(0.0, 0.0), pt(48.0, 24.0)).with_resolution(0.5);
        let est = localize(&obs, region);
        prop_assert!(est.position.x >= 0.0 && est.position.x <= 48.0);
        prop_assert!(est.position.y >= 0.0 && est.position.y <= 24.0);
        prop_assert!(est.likelihood.is_finite());
    }

    #[test]
    fn channel_reciprocity_of_power(x1 in 2.0f64..46.0, y1 in 2.0f64..22.0) {
        // Swapping client and AP positions preserves received power
        // in free space (antenna counts aside — use the array center).
        let fp = Floorplan::empty();
        let sim = ChannelSim::new(&fp);
        let a = pt(x1, y1);
        let b = pt(24.0, 12.0);
        prop_assume!(a.distance(b) > 1.0);
        let ar_a = AntennaArray::ula(a, 0.0, 2);
        let ar_b = AntennaArray::ula(b, 0.0, 2);
        let p_ab = sim.received_power(&Transmitter::at(a), &ar_b);
        let p_ba = sim.received_power(&Transmitter::at(b), &ar_a);
        prop_assert!((p_ab - p_ba).abs() < 1e-9 * p_ab.max(p_ba));
    }

    #[test]
    fn roughness_is_reproducible(x in 2.0f64..46.0, y in 2.0f64..22.0) {
        // Two traces of the same geometry give bit-identical paths — the
        // "static world" invariant that experiments rely on for seeding.
        let fp = arraytrack::testbed::office::office_floorplan();
        let tracer = arraytrack::channel::PathTracer::new(&fp);
        let p1 = tracer.trace(pt(x, y), 1.5, pt(24.0, 12.0), 1.5);
        let p2 = tracer.trace(pt(x, y), 1.5, pt(24.0, 12.0), 1.5);
        prop_assert_eq!(p1.len(), p2.len());
        for (a, b) in p1.iter().zip(&p2) {
            prop_assert_eq!(a.gain, b.gain);
            prop_assert_eq!(a.length, b.length);
        }
    }
}

/// Non-proptest regression: Point type re-exported through the facade.
#[test]
fn facade_reexports_are_usable() {
    let p: Point = pt(1.0, 2.0);
    assert_eq!(p.x, 1.0);
    let _cfg = ApPipelineConfig::arraytrack(8);
    let _music = arraytrack::core::MusicConfig::default();
}
