//! The capture-and-replay tier, end to end: record a live office session
//! into a journal, then prove the journal replays to bit-identical fixes
//! — in-process and over the wire — and that every corruption mode comes
//! back as a typed error, never a panic.
//!
//! What this tier pins down:
//! - **Record → replay parity**: a scripted six-AP session recorded at
//!   the server's admission tap replays through a fresh store + engine
//!   with zero divergence (and again through a live server).
//! - **Crash tails**: a journal cut mid-record opens fine, flags the
//!   tail, and its intact prefix still replays divergence-free.
//! - **Corruption**: flipped payload bytes surface as `CrcMismatch`,
//!   wrong deployments as `ConfigMismatch`, empty directories as
//!   `NoSegments` — all typed, none panicking.
//! - **Committed fixture**: the golden journal under `tests/fixtures/`
//!   matches the generator's deployment fingerprint, so `replay_check`
//!   in CI is comparing against the config it thinks it is.

use arraytrack::channel::geometry::pt;
use arraytrack::core::health::HealthPolicy;
use arraytrack::core::synthesis::{ApPose, SearchRegion};
use arraytrack::core::AoaSpectrum;
use arraytrack::replay::{
    replay_in_process, replay_wire, Journal, JournalError, JournalMeta, Pacing, Recorder,
    RecorderConfig, WireOptions,
};
use arraytrack::serve::{
    spawn_recorded, ApClient, AppClient, ClientConfig, RecordTap, ServeConfig, ServiceConfig,
    SessionPolicy,
};
use arraytrack::testbed::replay::{
    golden_deployment, golden_experiment, golden_meta, golden_service, golden_session_policy,
    record_golden,
};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// A unique scratch directory under the system temp dir, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "at_replay_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        Scratch(dir)
    }
    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn service() -> ServiceConfig {
    golden_service(&golden_deployment(), &golden_experiment())
}

const SYN_BINS: usize = 96;
const SYN_CAP: usize = 8;

/// A cheap four-AP deployment with analytic lobe spectra — no simulated
/// radios, so the corruption tests stay fast in debug builds.
fn synthetic_service() -> ServiceConfig {
    ServiceConfig {
        poses: vec![
            ApPose {
                center: pt(0.0, 0.0),
                axis_angle: 0.3,
            },
            ApPose {
                center: pt(20.0, 0.0),
                axis_angle: 2.0,
            },
            ApPose {
                center: pt(20.0, 10.0),
                axis_angle: -2.2,
            },
            ApPose {
                center: pt(0.0, 10.0),
                axis_angle: -0.4,
            },
        ],
        region: SearchRegion::new(pt(0.0, 0.0), pt(20.0, 10.0)),
        bins: SYN_BINS,
        policy: HealthPolicy::default(),
    }
}

/// The session policy the synthetic scenario records under: eviction cap
/// [`SYN_CAP`], wall-clock reaper disabled (hour-scale intervals).
fn syn_session_policy() -> SessionPolicy {
    SessionPolicy {
        idle_timeout: Duration::from_secs(3600),
        max_resident_spectra: SYN_CAP,
        reap_interval: Duration::from_secs(3600),
        refresh_interval: Duration::from_secs(3600),
        ..SessionPolicy::default()
    }
}

fn lobe(
    service: &ServiceConfig,
    ap: usize,
    target: arraytrack::channel::geometry::Point,
) -> AoaSpectrum {
    let bearing = service.poses[ap].bearing_to(target);
    AoaSpectrum::from_fn(SYN_BINS, |t| {
        let d = arraytrack::channel::geometry::angle_diff(t, bearing);
        (-(d / 0.25).powi(2)).exp() + 0.01
    })
}

/// Records a small scripted session (two clients, one failure report,
/// three queries) against the synthetic deployment.
fn record_synthetic(dir: &Path) -> Journal {
    let service = synthetic_service();
    let recorder = Arc::new(
        Recorder::create(
            dir,
            JournalMeta::for_service(&service, syn_session_policy()),
            RecorderConfig {
                rotate_bytes: u64::MAX,
            },
        )
        .expect("recorder"),
    );
    let session = syn_session_policy();
    let tap: Arc<dyn RecordTap> = recorder.clone();
    let server = spawn_recorded(
        service.clone(),
        ServeConfig {
            session,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
        Some(tap),
    )
    .expect("spawn");
    let mut aps: Vec<ApClient> = (0..service.poses.len())
        .map(|_| ApClient::connect(server.addr(), ClientConfig::default()).expect("ap"))
        .collect();
    let mut app = AppClient::connect(server.addr(), ClientConfig::default()).expect("app");
    for (key, target) in [(1u64, pt(6.5, 3.5)), (2, pt(14.0, 6.0))] {
        for (ap, conn) in aps.iter_mut().enumerate() {
            conn.submit(key, ap as u32, 0, &lobe(&service, ap, target))
                .expect("submit");
        }
    }
    aps[2].report_failure(2).expect("failure");
    for key in [1u64, 2, 3] {
        let _ = app.localize(key, None);
    }
    drop(aps);
    drop(app);
    server.shutdown();
    let stats = recorder.finish();
    assert!(!stats.failed);
    Journal::open(dir).expect("synthetic journal opens")
}

#[test]
fn recorded_session_replays_bit_exactly_in_process_and_over_the_wire() {
    let scratch = Scratch::new("e2e");
    // Small segments force rotation, so multi-segment reading is part of
    // the loop being tested.
    let stats = record_golden(scratch.path(), 32 << 10).expect("record");
    assert!(!stats.failed, "recorder hit a write error");
    assert!(stats.segments > 1, "rotation never triggered");

    let journal = Journal::open(scratch.path()).expect("open");
    assert_eq!(journal.segments as u32, stats.segments);
    assert_eq!(journal.records.len() as u64, stats.records);
    assert!(!journal.truncated_tail);

    let service = service();
    let report = replay_in_process(&journal, &service, golden_session_policy()).expect("replay");
    assert!(report.compared > 0, "no outcomes were compared");
    assert_eq!(report.divergences, 0, "{:?}", report.divergence_details);
    assert_eq!(report.skipped, 0);

    // The same journal against a live server: fresh store, same config,
    // sequential wire driving — still bit-exact.
    let server = arraytrack::serve::spawn(
        service.clone(),
        ServeConfig {
            session: golden_session_policy(),
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("spawn");
    let report = replay_wire(
        &journal,
        &server.addr().to_string(),
        &service,
        golden_session_policy(),
        &WireOptions {
            pacing: Pacing::Unpaced,
        },
    )
    .expect("wire replay");
    server.shutdown();
    assert!(report.compared > 0);
    assert_eq!(report.divergences, 0, "{:?}", report.divergence_details);
}

#[test]
fn truncated_tail_is_tolerated_and_the_prefix_still_replays() {
    let scratch = Scratch::new("tail");
    let full = record_synthetic(scratch.path());
    assert!(!full.truncated_tail);

    // Cut the single segment mid-record (not on a frame boundary).
    let seg = scratch.path().join("seg-000000.atj");
    let bytes = fs::read(&seg).expect("read segment");
    fs::write(&seg, &bytes[..bytes.len() - 7]).expect("truncate");

    let journal = Journal::open(scratch.path()).expect("truncated tail must open");
    assert!(journal.truncated_tail);
    assert!(journal.records.len() < full.records.len());

    let report = replay_in_process(&journal, &synthetic_service(), syn_session_policy())
        .expect("prefix replays");
    assert!(report.truncated_tail);
    assert_eq!(report.divergences, 0, "{:?}", report.divergence_details);
}

#[test]
fn corruption_and_mismatch_are_typed_errors_not_panics() {
    let scratch = Scratch::new("corrupt");
    let full = record_synthetic(scratch.path());
    assert_eq!(full.segments, 1);
    let seg = scratch.path().join("seg-000000.atj");
    let pristine = fs::read(&seg).expect("read segment");

    // A flipped byte inside the first record's payload: CRC catches it.
    let mut bytes = pristine.clone();
    let idx = 48 + 8 + 3; // header + first record's framing + 3
    bytes[idx] ^= 0x40;
    fs::write(&seg, &bytes).expect("write corrupt");
    match Journal::open(scratch.path()) {
        Err(JournalError::CrcMismatch { at: 48 }) => {}
        other => panic!("wanted CrcMismatch at 48, got {other:?}"),
    }

    // Bad magic.
    let mut bytes = pristine.clone();
    bytes[0] ^= 0xFF;
    fs::write(&seg, &bytes).expect("write bad magic");
    assert!(matches!(
        Journal::open(scratch.path()),
        Err(JournalError::BadMagic { .. })
    ));

    // Unsupported format version.
    let mut bytes = pristine.clone();
    bytes[8] = 0xEE;
    fs::write(&seg, &bytes).expect("write bad version");
    assert!(matches!(
        Journal::open(scratch.path()),
        Err(JournalError::BadVersion { .. })
    ));

    // Wrong deployment config at replay time: typed fingerprint refusal.
    fs::write(&seg, &pristine).expect("restore");
    let journal = Journal::open(scratch.path()).expect("pristine opens");
    let mut wrong = synthetic_service();
    wrong.policy.min_quorum += 1;
    assert!(matches!(
        replay_in_process(&journal, &wrong, syn_session_policy()),
        Err(JournalError::ConfigMismatch { .. })
    ));

    // An empty directory is typed too.
    let empty = Scratch::new("empty");
    fs::create_dir_all(empty.path()).expect("mkdir");
    assert!(matches!(
        Journal::open(empty.path()),
        Err(JournalError::NoSegments)
    ));
}

#[test]
fn committed_golden_fixture_matches_the_generator_deployment() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/replay_office");
    let journal = Journal::open(&dir).expect("committed fixture opens");
    assert!(
        !journal.truncated_tail,
        "committed fixture has a crash tail"
    );
    assert!(journal.segments > 1, "fixture should span several segments");
    let meta = golden_meta(&service());
    assert_eq!(
        journal.meta, meta,
        "fixture was recorded under a different deployment than the \
         generator builds; regenerate with UPDATE_GOLDEN=1"
    );
}
