//! The networked location service through the facade: simulated office
//! capture → wire protocol → batched server fusion, checked bit-exactly
//! against the in-process `ArrayTrackServer` on the same spectra.

use arraytrack::core::health::{ApStatus, HealthPolicy};
use arraytrack::core::ArrayTrackServer;
use arraytrack::serve::{Client, ClientConfig, ServeConfig};
use arraytrack::testbed::{compute_spectrum, Deployment, ExperimentConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn wire_fix_matches_in_process_server_bit_for_bit() {
    let dep = Deployment::office(3);
    let cfg = ExperimentConfig::arraytrack(3);
    let truth = dep.clients[10];

    // One captured spectrum per AP, shared by both paths.
    let mut rng = StdRng::seed_from_u64(17);
    let spectra: Vec<_> = (0..dep.aps.len())
        .map(|ap| compute_spectrum(&dep, ap, truth, &cfg, &mut rng))
        .collect();

    // In-process reference.
    let mut reference = ArrayTrackServer::new(dep.search_region());
    for (ap, spectrum) in spectra.iter().enumerate() {
        reference.add_observation_from(ap, dep.aps[ap].pose, spectrum.clone(), 0);
    }
    let expected = reference.try_localize().expect("reference fix");

    // The same spectra over the wire.
    let server = arraytrack::testbed::serve_deployment(
        &dep,
        cfg.pipeline.music.bins,
        HealthPolicy::default(),
        ServeConfig::default(),
    )
    .expect("spawn");
    let mut client = Client::connect(server.addr(), ClientConfig::default()).expect("connect");
    for (ap, spectrum) in spectra.iter().enumerate() {
        client.submit(ap as u32, 0, spectrum).expect("submit");
    }
    let fix = client.localize(None).expect("wire fix");

    assert_eq!(fix.position.x.to_bits(), expected.position.x.to_bits());
    assert_eq!(fix.position.y.to_bits(), expected.position.y.to_bits());
    assert_eq!(fix.likelihood.to_bits(), expected.likelihood.to_bits());
    assert!(fix.health.iter().all(|h| h.status == ApStatus::Healthy));

    // Failure reports degrade an AP over the wire with the same policy
    // thresholds the in-process tracker applies (degraded_after = 2).
    client.report_failure(2).expect("report");
    client.report_failure(2).expect("report");
    let fix = client.localize(None).expect("degraded fix");
    let degraded = fix
        .health
        .iter()
        .find(|h| h.ap_id == 2)
        .expect("AP 2 reported");
    assert_eq!(degraded.status, ApStatus::Degraded);
    assert_eq!(degraded.consecutive_failures, 2);

    let stats = server.shutdown();
    assert_eq!(stats.fixes, 2);
    assert_eq!(stats.shed, 0);
}
