//! The multi-process ingestion tier: six AP connections stream keyed
//! spectra into one server while application connections query by key —
//! the paper's Figure 1 deployment over the wire.
//!
//! What this tier pins down:
//! - **Parity**: a keyed fix assembled from six concurrent AP writers is
//!   bit-exact with the in-process `ArrayTrackServer::try_localize` on
//!   the same spectra.
//! - **Idle eviction**: a session nobody touches past the idle timeout
//!   disappears (the background reaper), and a later query gets the typed
//!   `NoObservations` — not a stale fix.
//! - **Cap eviction**: the resident-spectra cap displaces the
//!   least-recently-touched session, never the one being written.
//! - **Silent APs**: spectra age with the store's refresh tick, so a key
//!   whose APs go quiet degrades into the same typed `QuorumNotMet` the
//!   in-process server returns.
//! - **Golden fixture**: a populated store's snapshot (including eviction
//!   order) renders byte-identically across refactors.

use arraytrack::core::health::{HealthPolicy, LocalizeError};
use arraytrack::core::{AoaSpectrum, ArrayTrackServer};
use arraytrack::serve::{
    ApClient, AppClient, ClientConfig, ClientError, ServeConfig, SessionPolicy, SessionStore,
};
use arraytrack::testbed::{compute_spectrum, serve_deployment, Deployment, ExperimentConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

fn office() -> (Deployment, ExperimentConfig) {
    (Deployment::office(3), ExperimentConfig::arraytrack(3))
}

/// One captured spectrum per AP for each key's ground-truth position.
fn keyed_spectra(
    dep: &Deployment,
    cfg: &ExperimentConfig,
    keys: &[u64],
) -> Vec<(u64, arraytrack::channel::geometry::Point, Vec<AoaSpectrum>)> {
    let mut rng = StdRng::seed_from_u64(4242);
    keys.iter()
        .map(|&key| {
            let truth = dep.clients[key as usize % dep.clients.len()];
            let spectra = (0..dep.aps.len())
                .map(|ap| compute_spectrum(dep, ap, truth, cfg, &mut rng))
                .collect();
            (key, truth, spectra)
        })
        .collect()
}

#[test]
fn six_concurrent_ap_writers_match_in_process_fusion_bit_for_bit() {
    let (dep, cfg) = office();
    let keys: Vec<u64> = vec![11, 22, 33];
    let dataset = keyed_spectra(&dep, &cfg, &keys);

    // In-process reference, observations added in ascending-AP order —
    // the order the store's snapshot presents them for fusion.
    let expected: Vec<_> = dataset
        .iter()
        .map(|(_, _, spectra)| {
            let mut reference = ArrayTrackServer::new(dep.search_region());
            for (ap, spectrum) in spectra.iter().enumerate() {
                reference.add_observation_from(ap, dep.aps[ap].pose, spectrum.clone(), 0);
            }
            reference.try_localize().expect("reference fix")
        })
        .collect();

    let server = serve_deployment(
        &dep,
        cfg.pipeline.music.bins,
        HealthPolicy::default(),
        ServeConfig::default(),
    )
    .expect("spawn");
    let addr = server.addr();

    // Six AP processes, one connection each, all writing concurrently:
    // every AP thread submits its own spectrum for every key.
    let dataset = Arc::new(dataset);
    let writers: Vec<_> = (0..dep.aps.len())
        .map(|ap| {
            let dataset = Arc::clone(&dataset);
            thread::spawn(move || {
                let mut conn = ApClient::connect(addr, ClientConfig::default()).expect("ap");
                for (key, _, spectra) in dataset.iter() {
                    conn.submit(*key, ap as u32, 0, &spectra[ap])
                        .expect("submit");
                }
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer");
    }

    // Concurrent application readers, one per key.
    let readers: Vec<_> = keys
        .iter()
        .map(|&key| {
            thread::spawn(move || {
                let mut app = AppClient::connect(addr, ClientConfig::default()).expect("app");
                (key, app.localize(key, None).expect("fix"))
            })
        })
        .collect();
    for reader in readers {
        let (key, fix) = reader.join().expect("reader");
        let idx = keys.iter().position(|&k| k == key).expect("known key");
        let want = &expected[idx];
        assert_eq!(fix.position.x.to_bits(), want.position.x.to_bits());
        assert_eq!(fix.position.y.to_bits(), want.position.y.to_bits());
        assert_eq!(fix.likelihood.to_bits(), want.likelihood.to_bits());
        assert_eq!(fix.health.len(), dep.aps.len());
    }

    let stats = server.shutdown();
    assert_eq!(stats.fixes as usize, keys.len());
    assert_eq!(stats.sessions_created as usize, keys.len());
    assert_eq!(
        stats.spectra_resident as usize,
        keys.len() * dep.aps.len(),
        "nothing should have been evicted"
    );
    assert_eq!(stats.sessions_evicted_idle + stats.sessions_evicted_cap, 0);
}

#[test]
fn idle_sessions_are_reaped_and_queries_get_no_observations() {
    let (dep, cfg) = office();
    let serve_cfg = ServeConfig {
        session: SessionPolicy {
            idle_timeout: Duration::from_millis(50),
            reap_interval: Duration::from_millis(10),
            // Staleness out of the way: only idleness evicts here.
            refresh_interval: Duration::from_secs(3600),
            ..SessionPolicy::default()
        },
        ..ServeConfig::default()
    };
    let server = serve_deployment(
        &dep,
        cfg.pipeline.music.bins,
        HealthPolicy::default(),
        serve_cfg,
    )
    .expect("spawn");

    // Spectra precomputed up front: the submissions themselves must land
    // well inside one idle timeout, or the reaper evicts mid-stream.
    let mut rng = StdRng::seed_from_u64(5);
    let truth = dep.clients[1];
    let spectra: Vec<_> = (0..dep.aps.len())
        .map(|ap| compute_spectrum(&dep, ap, truth, &cfg, &mut rng))
        .collect();
    let mut aps =
        arraytrack::testbed::ap_clients(server.addr(), dep.aps.len(), ClientConfig::default())
            .expect("aps");
    for (ap, spectrum) in spectra.iter().enumerate() {
        aps[ap].submit(9, ap as u32, 0, spectrum).expect("submit");
    }

    // Wait out the idle timeout; the background reaper must evict.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let stats = server.stats();
        if stats.sessions_evicted_idle >= 1 && stats.sessions_resident == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "reaper never evicted the idle session"
        );
        thread::sleep(Duration::from_millis(10));
    }

    let mut app = AppClient::connect(server.addr(), ClientConfig::default()).expect("app");
    match app.localize(9, None) {
        Err(ClientError::Localize(LocalizeError::NoObservations)) => {}
        other => panic!("wanted NoObservations after idle eviction, got {other:?}"),
    }
    let stats = server.shutdown();
    assert_eq!(stats.sessions_resident, 0);
    assert_eq!(stats.spectra_resident, 0);
}

#[test]
fn cap_pressure_evicts_the_oldest_session_not_the_writer() {
    let (dep, cfg) = office();
    let n_aps = dep.aps.len();
    // Room for exactly two full sessions: a third must displace the
    // least-recently-touched one.
    let serve_cfg = ServeConfig {
        session: SessionPolicy {
            max_resident_spectra: 2 * n_aps,
            idle_timeout: Duration::from_secs(3600),
            refresh_interval: Duration::from_secs(3600),
            ..SessionPolicy::default()
        },
        ..ServeConfig::default()
    };
    let server = serve_deployment(
        &dep,
        cfg.pipeline.music.bins,
        HealthPolicy::default(),
        serve_cfg,
    )
    .expect("spawn");

    let mut rng = StdRng::seed_from_u64(6);
    let mut aps = arraytrack::testbed::ap_clients(server.addr(), n_aps, ClientConfig::default())
        .expect("aps");
    for key in [1u64, 2, 3] {
        let truth = dep.clients[key as usize];
        arraytrack::testbed::submit_position_keyed(&mut aps, key, &dep, truth, &cfg, &mut rng)
            .expect("submit");
    }

    let mut app = AppClient::connect(server.addr(), ClientConfig::default()).expect("app");
    // Key 1 was the oldest when key 3 overflowed the cap: gone.
    match app.localize(1, None) {
        Err(ClientError::Localize(LocalizeError::NoObservations)) => {}
        other => panic!("wanted the oldest session evicted, got {other:?}"),
    }
    // Keys 2 and 3 still localize.
    app.localize(2, None).expect("key 2 fix");
    app.localize(3, None).expect("key 3 fix");

    let stats = server.shutdown();
    assert_eq!(stats.sessions_evicted_cap, 1);
    assert_eq!(stats.sessions_evicted_idle, 0);
    assert!(
        stats.spectra_resident as usize <= 2 * n_aps,
        "resident spectra {} exceed the cap {}",
        stats.spectra_resident,
        2 * n_aps
    );
}

#[test]
fn silent_aps_age_into_a_typed_quorum_error() {
    let (dep, cfg) = office();
    let policy = HealthPolicy {
        min_quorum: 4,
        ..HealthPolicy::default()
    };
    let serve_cfg = ServeConfig {
        session: SessionPolicy {
            // Fast staleness clock; idleness out of the way (queries keep
            // the session warm anyway).
            refresh_interval: Duration::from_millis(25),
            idle_timeout: Duration::from_secs(3600),
            ..SessionPolicy::default()
        },
        ..ServeConfig::default()
    };
    let server = serve_deployment(&dep, cfg.pipeline.music.bins, policy, serve_cfg).expect("spawn");

    let mut rng = StdRng::seed_from_u64(7);
    let truth = dep.clients[3];
    let mut aps =
        arraytrack::testbed::ap_clients(server.addr(), dep.aps.len(), ClientConfig::default())
            .expect("aps");
    arraytrack::testbed::submit_position_keyed(&mut aps, 4, &dep, truth, &cfg, &mut rng)
        .expect("submit");

    // All six APs now go silent. Spectra age one refresh interval per
    // tick; past max_spectrum_age (default 3) every one is stale and the
    // quorum of 4 is unmeetable.
    thread::sleep(Duration::from_millis(400));
    let mut app = AppClient::connect(server.addr(), ClientConfig::default()).expect("app");
    match app.localize(4, None) {
        Err(ClientError::Localize(LocalizeError::QuorumNotMet {
            available,
            required,
            stale,
            down,
            degenerate,
        })) => {
            assert_eq!(available, 0);
            assert_eq!(required, 4);
            assert_eq!(stale, dep.aps.len());
            assert_eq!(down, 0);
            assert_eq!(degenerate, 0);
        }
        other => panic!("wanted QuorumNotMet from silent APs, got {other:?}"),
    }
    server.shutdown();
}

/// Rebuilds the same store state the committed fixture was generated
/// from: wall-clock free (logical touch sequence only), so the rendering
/// must be byte-identical on every machine and across refactors.
fn golden_store() -> SessionStore {
    let policy = SessionPolicy {
        idle_timeout: Duration::from_secs(3600),
        max_resident_spectra: 64,
        reap_interval: Duration::from_secs(3600),
        refresh_interval: Duration::from_secs(3600),
        shards: 4,
    };
    let store = SessionStore::new(3, policy);
    let spectrum = |seed: u64| {
        Arc::new(AoaSpectrum::from_fn(16, |theta| {
            (theta + seed as f64).sin().abs() + 0.25
        }))
    };
    // Keys interleaved so eviction order differs from insertion order.
    store.submit(101, 0, 0, spectrum(1));
    store.submit(202, 0, 1, spectrum(2));
    store.submit(101, 2, 0, spectrum(3));
    store.advance_tick();
    store.submit(303, 1, 0, spectrum(4));
    store.submit(202, 2, 2, spectrum(5));
    // Touch 101 last: 303 becomes the eviction candidate.
    store.snapshot(101).expect("resident");
    store
}

#[test]
fn session_store_golden_snapshot_is_stable() {
    let rendered = golden_store().golden_snapshot();
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/session_store.golden");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &rendered).expect("write fixture");
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden fixture {path:?} ({e}); regenerate with UPDATE_GOLDEN=1")
    });
    assert_eq!(
        rendered, golden,
        "store snapshot drifted from tests/fixtures/session_store.golden — \
         if the change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
    // The fixture's last line is the eviction order; pin it explicitly
    // too so a format change cannot silently hide an order change.
    assert!(
        golden.trim_end().ends_with("eviction_order 303,202,101"),
        "eviction order changed"
    );
}
