//! Topology epochs end to end: a live server taken through remove →
//! move → re-add reconfigurations under a concurrent submit/localize
//! storm, with the surviving-quorum fixes checked bit-exactly against
//! the in-process `ArrayTrackServer` and every misuse path coming back
//! as a typed refusal — never a panic, never a wedged server.
//!
//! What this tier pins down:
//! - **Departure mid-storm**: an AP removed while ingest/query traffic
//!   is in flight; sessions keep their surviving spectra and the next
//!   fix on the shrunken deployment matches `try_localize` on the same
//!   three spectra bit for bit.
//! - **Epoch bookkeeping**: each applied op bumps the epoch by one and
//!   the server's advertised fingerprint equals the canonical
//!   `at-config` fingerprint computed client-side from the same op.
//! - **Typed refusals**: out-of-range ops are refused with `BAD_CONFIG`
//!   and leave the epoch untouched; submits to a departed id are
//!   refused with `BAD_AP`; a cold joiner that hasn't warmed yet yields
//!   `QuorumNotMet`, not a guess and not a crash.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use arraytrack::channel::geometry::{angle_diff, pt, Point};
use arraytrack::config::TopologyOp;
use arraytrack::core::health::{HealthPolicy, LocalizeError};
use arraytrack::core::synthesis::{ApPose, SearchRegion};
use arraytrack::core::{AoaSpectrum, ArrayTrackServer};
use arraytrack::serve::{
    ApClient, AppClient, ClientConfig, ClientError, ServeConfig, ServiceConfig, SessionPolicy,
};
use std::time::Duration;

const BINS: usize = 96;

/// Four-AP synthetic deployment with analytic lobe spectra (no simulated
/// radios), quorum of two so shrunken sessions still fix but a lone cold
/// joiner cannot.
fn service() -> ServiceConfig {
    ServiceConfig {
        poses: vec![
            ApPose {
                center: pt(0.0, 0.0),
                axis_angle: 0.3,
            },
            ApPose {
                center: pt(20.0, 0.0),
                axis_angle: 2.0,
            },
            ApPose {
                center: pt(20.0, 10.0),
                axis_angle: -2.2,
            },
            ApPose {
                center: pt(0.0, 10.0),
                axis_angle: -0.4,
            },
        ],
        region: SearchRegion::new(pt(0.0, 0.0), pt(20.0, 10.0)),
        bins: BINS,
        policy: HealthPolicy {
            min_quorum: 2,
            ..HealthPolicy::default()
        },
    }
}

/// Hour-scale session policy: no reaper ticks, so the store's contents
/// are a pure function of the submitted traffic.
fn session_policy() -> SessionPolicy {
    SessionPolicy {
        idle_timeout: Duration::from_secs(3600),
        reap_interval: Duration::from_secs(3600),
        refresh_interval: Duration::from_secs(3600),
        ..SessionPolicy::default()
    }
}

fn lobe(pose: ApPose, target: Point) -> AoaSpectrum {
    let bearing = pose.bearing_to(target);
    AoaSpectrum::from_fn(BINS, |t| {
        let d = angle_diff(t, bearing);
        (-(d / 0.25).powi(2)).exp() + 0.01
    })
}

/// Spawns `n` storm threads, each streaming keyed submits to `storm_aps`
/// and localizing its own key in a tight loop until `stop` is raised.
/// Joining the handles asserts the storm saw zero panics and zero
/// client-visible errors across every epoch swap.
fn spawn_storm(
    addr: std::net::SocketAddr,
    service: &ServiceConfig,
    storm_aps: &[usize],
    n: usize,
    stop: &Arc<AtomicBool>,
    fixes: &Arc<AtomicU64>,
) -> Vec<std::thread::JoinHandle<()>> {
    (0..n)
        .map(|i| {
            let stop = Arc::clone(stop);
            let fixes = Arc::clone(fixes);
            let storm_aps = storm_aps.to_vec();
            let poses: Vec<ApPose> = service.poses.clone();
            std::thread::spawn(move || {
                let key = 200 + i as u64;
                let target = pt(4.0 + 3.0 * i as f64, 3.0 + i as f64);
                let mut ap = ApClient::connect(addr, ClientConfig::default()).expect("storm ap");
                let mut app = AppClient::connect(addr, ClientConfig::default()).expect("storm app");
                while !stop.load(Ordering::Relaxed) {
                    for &id in &storm_aps {
                        ap.submit(key, id as u32, 0, &lobe(poses[id], target))
                            .expect("storm submit across epochs");
                    }
                    app.localize(key, None).expect("storm fix across epochs");
                    fixes.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect()
}

#[test]
fn ap_departure_mid_storm_keeps_surviving_quorum_bit_exact() {
    let service = service();
    let session = session_policy();
    let server = arraytrack::serve::spawn(
        service.clone(),
        ServeConfig {
            session,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("spawn");
    let addr = server.addr();

    // The quiet session: one spectrum from each of the four APs, then
    // untouched by the storm so its contents are exactly known.
    const QUIET: u64 = 100;
    let target = pt(7.5, 4.5);
    let spectra: Vec<AoaSpectrum> = service.poses.iter().map(|&p| lobe(p, target)).collect();
    let mut ingest = ApClient::connect(addr, ClientConfig::default()).expect("ingest");
    for (id, s) in spectra.iter().enumerate() {
        ingest.submit(QUIET, id as u32, 0, s).expect("quiet submit");
    }

    // Storm traffic on APs that survive the removal, running through it.
    let stop = Arc::new(AtomicBool::new(false));
    let fixes = Arc::new(AtomicU64::new(0));
    let storm = spawn_storm(addr, &service, &[0, 1, 2], 2, &stop, &fixes);
    while fixes.load(Ordering::Relaxed) < 5 {
        std::thread::yield_now();
    }

    // AP 3 departs mid-storm. The epoch bumps and the advertised
    // fingerprint is the canonical one for the shrunken config.
    let mut app = AppClient::connect(addr, ClientConfig::default()).expect("app");
    let info = app
        .reconfigure(&TopologyOp::Remove { ap_id: 3 })
        .expect("remove");
    assert_eq!(info.epoch, 1);
    assert_eq!(info.poses.len(), 3);
    let (expected_system, mapping) = service
        .to_system(session)
        .apply(&TopologyOp::Remove { ap_id: 3 })
        .expect("op applies client-side too");
    assert_eq!(info.fingerprint, expected_system.fingerprint());
    assert_eq!(mapping.n_new, 3);

    // The quiet session kept its three surviving spectra: the wire fix on
    // the new epoch matches the in-process server on the same three
    // spectra, bit for bit — while the storm is still running.
    let fix = app.localize(QUIET, None).expect("surviving-quorum fix");
    let mut reference = ArrayTrackServer::new(service.region).with_policy(service.policy);
    for (id, s) in spectra.iter().take(3).enumerate() {
        reference.add_observation_from(id, service.poses[id], s.clone(), 0);
    }
    let expected = reference.try_localize().expect("reference fix");
    assert_eq!(fix.position.x.to_bits(), expected.position.x.to_bits());
    assert_eq!(fix.position.y.to_bits(), expected.position.y.to_bits());
    assert_eq!(fix.likelihood.to_bits(), expected.likelihood.to_bits());

    // A submit to the departed id is a typed wire refusal, and the
    // connection survives to keep serving valid ids.
    let mut probe = ApClient::connect(addr, ClientConfig::default()).expect("probe");
    match probe.submit(300, 3, 0, &spectra[3]) {
        Err(ClientError::Protocol(msg)) => assert!(msg.contains("out of range"), "{msg}"),
        other => panic!("wanted BAD_AP protocol refusal, got {other:?}"),
    }
    probe
        .submit(300, 0, 0, &spectra[0])
        .expect("probe connection still usable");

    stop.store(true, Ordering::Relaxed);
    for h in storm {
        h.join().expect("storm thread panicked");
    }
    server.shutdown();
}

#[test]
fn remove_move_readd_under_storm_refuses_bad_ops_and_cold_joiner_typed() {
    let service = service();
    let session = session_policy();
    let server = arraytrack::serve::spawn(
        service.clone(),
        ServeConfig {
            session,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("spawn");
    let addr = server.addr();

    // Storm on APs 1 and 2 — the two poses no op in this scenario
    // touches — so the traffic is valid in every epoch.
    let stop = Arc::new(AtomicBool::new(false));
    let fixes = Arc::new(AtomicU64::new(0));
    let storm = spawn_storm(addr, &service, &[1, 2], 2, &stop, &fixes);
    while fixes.load(Ordering::Relaxed) < 5 {
        std::thread::yield_now();
    }

    let mut app = AppClient::connect(addr, ClientConfig::default()).expect("app");

    // Out-of-range ops are refused typed, with the epoch untouched.
    for bad in [
        TopologyOp::Remove { ap_id: 99 },
        TopologyOp::Move {
            ap_id: 99,
            pose: service.poses[0],
        },
    ] {
        match app.reconfigure(&bad) {
            Err(ClientError::Protocol(msg)) => assert!(msg.contains("code 4"), "{msg}"),
            other => panic!("wanted BAD_CONFIG refusal, got {other:?}"),
        }
    }
    assert_eq!(app.topology().expect("topology").epoch, 0);

    // The full lifecycle, mid-storm: remove AP 3, move AP 0, re-add a
    // fourth AP. Every applied op bumps the epoch by exactly one.
    let info = app
        .reconfigure(&TopologyOp::Remove { ap_id: 3 })
        .expect("remove");
    assert_eq!((info.epoch, info.poses.len()), (1, 3));

    let mut moved = service.poses[0];
    moved.center.x += 0.5;
    let info = app
        .reconfigure(&TopologyOp::Move {
            ap_id: 0,
            pose: moved,
        })
        .expect("move");
    assert_eq!((info.epoch, info.poses.len()), (2, 3));
    assert_eq!(
        info.poses[0].center.x.to_bits(),
        moved.center.x.to_bits(),
        "moved pose must be advertised verbatim"
    );

    let rejoin = service.poses[3];
    let info = app
        .reconfigure(&TopologyOp::Add { pose: rejoin })
        .expect("re-add");
    assert_eq!((info.epoch, info.poses.len()), (3, 4));

    // The server's fingerprint chain matches the same three ops applied
    // client-side to the canonical config.
    let mut system = service.to_system(session);
    for op in [
        TopologyOp::Remove { ap_id: 3 },
        TopologyOp::Move {
            ap_id: 0,
            pose: moved,
        },
        TopologyOp::Add { pose: rejoin },
    ] {
        system = system.apply(&op).expect("op chain applies").0;
    }
    assert_eq!(info.fingerprint, system.fingerprint());

    // The joiner is cold: a session that has only its spectrum is under
    // quorum — a typed refusal, not a guess.
    let mut ingest = ApClient::connect(addr, ClientConfig::default()).expect("ingest");
    ingest
        .submit(400, 3, 0, &lobe(rejoin, pt(10.0, 5.0)))
        .expect("joiner submit");
    match app.localize(400, None) {
        Err(ClientError::Localize(LocalizeError::QuorumNotMet {
            available,
            required,
            ..
        })) => {
            assert_eq!((available, required), (1, 2));
        }
        other => panic!("wanted QuorumNotMet for the cold joiner, got {other:?}"),
    }

    // Once a second AP's spectrum lands, the same session fixes.
    ingest
        .submit(400, 1, 0, &lobe(service.poses[1], pt(10.0, 5.0)))
        .expect("warm submit");
    app.localize(400, None).expect("fix once quorum is met");

    stop.store(true, Ordering::Relaxed);
    for h in storm {
        h.join().expect("storm thread panicked");
    }
    let made = fixes.load(Ordering::Relaxed);
    assert!(made >= 5, "storm made {made} fixes");
    server.shutdown();
}
