//! Integration-tier coverage of the tracking layer through the facade:
//! the constant-velocity Kalman filter that turns the pipeline's stream
//! of per-fix estimates into the smooth trajectories the paper's §1
//! applications (AR, navigation) consume.

use arraytrack::channel::geometry::{pt, Point};
use arraytrack::core::tracking::{Tracker, TrackerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A straight walk at `vel` m/s sampled every `dt` seconds, with white
/// Gaussian-ish fix noise of standard deviation `sigma` (sum of 12
/// uniforms, deterministic via the seed).
fn noisy_walk(
    start: Point,
    vel: (f64, f64),
    dt: f64,
    steps: usize,
    sigma: f64,
    seed: u64,
) -> Vec<(Point, Point)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let gauss = move |rng: &mut StdRng| -> f64 {
        (0..12).map(|_| rng.gen_range(-0.5..0.5)).sum::<f64>() * sigma
    };
    (0..steps)
        .map(|i| {
            let t = i as f64 * dt;
            let truth = pt(start.x + vel.0 * t, start.y + vel.1 * t);
            let fix = pt(truth.x + gauss(&mut rng), truth.y + gauss(&mut rng));
            (truth, fix)
        })
        .collect()
}

#[test]
fn tracker_initializes_at_the_first_fix() {
    let mut tracker = Tracker::new(TrackerConfig::default());
    assert!(!tracker.is_initialized());
    assert!(tracker.position().is_none());
    assert!(tracker.velocity().is_none());
    assert!(tracker.predict(1.0).is_none());

    let first = pt(3.25, 4.5);
    let out = tracker.update(first, 1.0);
    assert_eq!(out, first, "the first fix is adopted verbatim");
    assert!(tracker.is_initialized());
    assert_eq!(tracker.fix_count(), 1);
    assert_eq!(tracker.position(), Some(first));
    assert_eq!(tracker.velocity(), Some((0.0, 0.0)));
}

#[test]
fn tracking_beats_raw_fixes_on_a_noisy_walk() {
    // ArrayTrack-grade noise (σ ≈ 0.35 m) on a 1 m/s walk at 10 Hz.
    let walk = noisy_walk(pt(2.0, 3.0), (0.9, 0.45), 0.1, 120, 0.35, 11);
    let mut tracker = Tracker::new(TrackerConfig::default());
    let (mut raw_err, mut tracked_err) = (0.0, 0.0);
    // Skip the convergence transient when scoring.
    for (i, &(truth, fix)) in walk.iter().enumerate() {
        let smoothed = tracker.update(fix, 0.1);
        if i >= 20 {
            raw_err += fix.distance(truth);
            tracked_err += truth.distance(smoothed);
        }
    }
    assert_eq!(tracker.fix_count() as usize, walk.len());
    assert!(
        tracked_err < 0.7 * raw_err,
        "filter should cut steady-state error by >30%: raw {raw_err:.2}, tracked {tracked_err:.2}"
    );

    // The velocity estimate recovers the true walking velocity.
    let (vx, vy) = tracker.velocity().expect("initialized");
    assert!((vx - 0.9).abs() < 0.25, "vx estimate {vx:.2}");
    assert!((vy - 0.45).abs() < 0.25, "vy estimate {vy:.2}");
}

#[test]
fn prediction_extrapolates_along_the_estimated_velocity() {
    let mut tracker = Tracker::new(TrackerConfig::default());
    // A clean constant-velocity track leaves nothing for the filter to
    // smooth, so predict() must extrapolate linearly.
    for i in 0..40 {
        let t = i as f64 * 0.1;
        tracker.update(pt(1.0 + 2.0 * t, 5.0 - 1.0 * t), 0.1);
    }
    let now = tracker.position().expect("initialized");
    let ahead = tracker.predict(0.5).expect("initialized");
    let expected = pt(now.x + 2.0 * 0.5, now.y - 1.0 * 0.5);
    assert!(
        ahead.distance(expected) < 0.15,
        "predicted {ahead:?}, expected {expected:?}"
    );
}

#[test]
fn outlier_gate_rides_out_a_wild_fix() {
    let mut tracker = Tracker::new(TrackerConfig::default());
    for i in 0..30 {
        tracker.update(pt(10.0 + 0.1 * i as f64, 8.0), 0.1);
    }
    let before = tracker.position().expect("initialized");
    assert_eq!(tracker.outlier_count(), 0);

    // A blocked direct path throws a fix 15 m across the floor.
    let smoothed = tracker.update(pt(25.0, 20.0), 0.1);
    assert_eq!(tracker.outlier_count(), 1);
    assert!(
        smoothed.distance(before) < 2.0,
        "gated fix moved the track {:.2} m",
        smoothed.distance(before)
    );

    // Consistent fixes afterwards re-converge quickly.
    for i in 0..10 {
        tracker.update(pt(13.1 + 0.1 * i as f64, 8.0), 0.1);
    }
    let after = tracker.position().expect("initialized");
    assert!(
        after.distance(pt(14.0, 8.0)) < 0.5,
        "track did not re-converge: {after:?}"
    );
}
