//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crate registry, so this vendors the
//! subset the workspace's benches use: [`Criterion::bench_function`],
//! [`Bencher::iter`], `sample_size`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Timing is a straightforward
//! calibrate-then-sample loop reporting min/median/mean per benchmark —
//! no statistical regression analysis or HTML reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness handle.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    target_sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            target_sample_time: Duration::from_millis(20),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "need at least two samples");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        // Calibration pass: find an iteration count that fills the target
        // sample time, so per-sample clock overhead is negligible.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let once = b.elapsed.max(Duration::from_nanos(1));
        let iters = (self.target_sample_time.as_nanos() / once.as_nanos()).clamp(1, 1 << 24) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{name:<40} min {:>12} med {:>12} mean {:>12} ({} samples x {iters} iters)",
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean),
            samples.len(),
        );
        self
    }
}

/// Times the closure passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the configured iteration count, timing the whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} us", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Declares a group of benchmarks as a function running each target.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_and_reports() {
        let mut c = Criterion {
            sample_size: 3,
            target_sample_time: Duration::from_micros(200),
        };
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn time_formatting_scales() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-6).ends_with("us"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_time(5.0).ends_with("s"));
    }
}
