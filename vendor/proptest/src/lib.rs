//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crate registry, so this vendors the
//! surface the workspace's property tests rely on: the [`proptest!`]
//! macro, the [`Strategy`] trait with `prop_map`, range and tuple
//! strategies, [`collection::vec`], and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` assertion macros.
//!
//! Unlike upstream there is no shrinking: a failing case panics with the
//! generating seed in the message so it can be replayed by fixing the
//! `PROPTEST_SEED` environment variable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Generation sources and runner plumbing.
pub mod test_runner {
    use super::*;

    /// Runner configuration (subset: case count only).
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of random cases to execute per property.
        pub cases: u32,
    }

    /// Upstream name for [`Config`].
    pub type ProptestConfig = Config;

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Drives a property over its strategy.
    #[derive(Debug)]
    pub struct TestRunner {
        config: Config,
        base_seed: u64,
    }

    impl TestRunner {
        /// A runner honouring `PROPTEST_CASES` / `PROPTEST_SEED` overrides.
        pub fn new(config: Config) -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(config.cases);
            let base_seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0x5EED_CAFE);
            Self {
                config: Config { cases },
                base_seed,
            }
        }

        /// Runs `f` on `cases` values drawn from `strategy`. Failures
        /// panic (inside `f`) with the case seed reported via
        /// [`CaseContext`].
        pub fn run<S: Strategy, F: FnMut(S::Value)>(&mut self, strategy: &S, mut f: F) {
            for case in 0..self.config.cases {
                let seed = self
                    .base_seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(case as u64);
                let mut rng = StdRng::seed_from_u64(seed);
                let value = strategy.new_value(&mut rng);
                let ctx = CaseContext { seed };
                let _ = &ctx;
                f(value);
            }
        }
    }

    /// Identifies the failing case in panic messages.
    #[derive(Clone, Copy, Debug)]
    pub struct CaseContext {
        /// The seed that generated the failing inputs.
        pub seed: u64,
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn new_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Sizes accepted by [`vec`]: a fixed length or a length range.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A strategy for `Vec`s whose elements come from `element` and whose
    /// length comes from `len` (a `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// The common imports property tests expect.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, Just, Strategy};
}

/// Asserts a condition inside a property, reporting the failing values.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Skips the current case when its inputs don't meet a precondition.
/// (Upstream rejects and redraws; this stand-in simply returns from the
/// case closure, so heavy rejection slightly reduces the case count.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new($cfg);
                let strategy = ($($strat,)+);
                runner.run(&strategy, |($($arg,)+)| $body);
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 1.0f64..2.0, n in 3usize..9) {
            prop_assert!((1.0..2.0).contains(&x));
            prop_assert!((3..9).contains(&n));
        }

        #[test]
        fn map_and_vec_compose(
            xs in crate::collection::vec((0.0f64..1.0).prop_map(|v| v * 2.0), 2..5)
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
            for x in xs {
                prop_assert!((0.0..2.0).contains(&x));
            }
        }

        #[test]
        fn assume_skips_cases(x in 0.0f64..1.0) {
            prop_assume!(x > 0.5);
            prop_assert!(x > 0.5);
        }
    }
}
