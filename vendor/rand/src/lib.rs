//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to a crate registry, so the
//! workspace vendors the small slice of `rand` it actually uses:
//! [`rngs::StdRng`] (deterministic, seedable), [`rngs::mock::StepRng`],
//! the [`SeedableRng`]/[`RngCore`]/[`Rng`] traits, and uniform sampling
//! over float/integer ranges via [`Rng::gen_range`] / [`Rng::gen`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream's ChaCha12, but the workspace only relies on
//! determinism and distribution quality, never on exact stream values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 32/64-bit words (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution
    /// (`f64`/`f32` in `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types with a standard distribution for [`Rng::gen`].
pub trait Standard {
    /// Draws one standard-distributed value.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_standard {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f32::sample_standard(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        // Scale a [0, 1) draw to the closed interval; the endpoint bias of
        // one ulp is irrelevant at the workspace's tolerances.
        lo + (hi - lo) * ((rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64)
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling; bias is < 2^-64.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Mock generators for tests.
    pub mod mock {
        use super::RngCore;

        /// Arithmetic-progression generator: yields `initial`,
        /// `initial + increment`, … (wrapping).
        #[derive(Clone, Debug)]
        pub struct StepRng {
            v: u64,
            increment: u64,
        }

        impl StepRng {
            /// A generator starting at `initial` stepping by `increment`.
            pub fn new(initial: u64, increment: u64) -> Self {
                Self {
                    v: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.increment);
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| super::RngCore::next_u64(&mut a)).collect();
        let ys: Vec<u64> = (0..8).map(|_| super::RngCore::next_u64(&mut b)).collect();
        let zs: Vec<u64> = (0..8).map(|_| super::RngCore::next_u64(&mut c)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(0..7usize);
            assert!(i < 7);
            let j = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&j));
        }
    }

    #[test]
    fn gen_f64_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn step_rng_steps() {
        let mut r = StepRng::new(7, 3);
        assert_eq!(super::RngCore::next_u64(&mut r), 7);
        assert_eq!(super::RngCore::next_u64(&mut r), 10);
    }
}
